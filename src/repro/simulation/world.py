"""The world: builds both platforms and replays the migration event.

``World.simulate()`` runs in two phases:

1. **Dynamics** (day by day over the study window): the contagion model
   decides who migrates; migrators pick an instance (possibly self-hosting),
   activate or create their Mastodon account, and wire up follows with
   already-migrated neighbours; migrated users may later switch instance
   under social pull.  The per-candidate hazard test is columnar: agent
   state lives in :class:`repro.simulation.state.AgentColumns` and each
   tick draws one uniform batch per shard (per-(stage, shard) seeds from
   :func:`repro.parallel.derive_seed`) against a vectorised hazard, with
   only the *hits* walking the object-graph migration path.

2. **Content materialisation** (after the dynamics): planned on
   :class:`repro.parallel.WorldShardRunner` shards as post accumulator
   columns (:mod:`repro.simulation.materialise`), then applied serially at
   the dataset boundary — the only place ``Tweet``/``Status`` objects are
   created.  Nothing in the dynamics depends on post *content*, and a
   shard's plan is a pure function of the frozen dynamics state, which is
   what makes the generated dataset byte-identical at any worker count.

Finally, crawl-time failure states are planted: suspended / deactivated /
protected Twitter accounts and downed instances, with the paper's rates.
"""

from __future__ import annotations

import datetime as _dt
import gc
import time
import warnings
from collections import Counter

import numpy as np

from repro.fediverse.directory import InstanceDirectory
from repro.fediverse.network import FediverseNetwork
from repro.nlp.generator import PostGenerator
from repro.simulation.config import SimConfig, WorldConfig
from repro.simulation.contagion import ContagionModel
from repro.simulation.events import EventTimeline
from repro.simulation.instance_choice import InstanceChooser
from repro.simulation.population import PopulationBuilder, SimUser, generate_instances, register_instances
from repro.simulation.trends import TrendsService
from repro.twitter.api import TwitterAPI
from repro.twitter.graph import FollowGraph
from repro.twitter.models import AccountState
from repro.twitter.store import TwitterStore
from repro.parallel.sharding import SHARD_COUNT, derive_seed, partition_bounds
from repro.util.clock import TAKEOVER_DATE, date_range
from repro.util.ids import SnowflakeGenerator
from repro.util.rng import RngTree
from repro.util.rngcompat import fast_shape_prod, poisson_batch

from repro.simulation.switching import SwitchModel


class World:
    """A fully-built synthetic world ready for collection.

    ``workers``/``backend`` configure the materialisation planning stages
    (:class:`repro.parallel.WorldShardRunner`); the generated world is
    byte-identical for any setting — parallelism is purely a scheduling
    concern, exactly as in the collection engine.
    """

    def __init__(
        self,
        config: SimConfig,
        *,
        workers: int = 1,
        backend: str = "serial",
        shard_count: int | None = None,
    ) -> None:
        config.validate()
        self.config = config
        self.rng = RngTree(config.seed)
        self._workers = workers
        self._backend = backend
        self._shard_count = shard_count if shard_count is not None else SHARD_COUNT

        self.twitter_store = TwitterStore()
        self.twitter_graph = FollowGraph()
        self.network = FediverseNetwork()
        self.timeline = EventTimeline()
        self.trends = TrendsService(self.timeline, self.rng.stream("trends"))

        self.instance_specs = generate_instances(config, self.rng.stream("instances"))
        register_instances(self.network, self.instance_specs)
        self._install_moderation_policies()
        self._flagships = frozenset(
            spec.domain for spec in self.instance_specs if spec.flagship
        )

        builder = PopulationBuilder(config, self.rng.stream("population"))
        self.agents, self.candidate_ids, self.hub_ids, self.chatter_ids = builder.build(
            self.twitter_store, self.twitter_graph
        )

        self._contagion = ContagionModel(
            config, self.timeline, self.twitter_graph, self.rng.stream("contagion")
        )
        self._chooser = InstanceChooser(
            config, self.instance_specs, self.rng.stream("choice")
        )
        self._switcher = SwitchModel(
            config, self._flagships, self.rng.stream("switching")
        )
        self._generator = PostGenerator(self.rng.stream("text"))
        self._tweet_ids = SnowflakeGenerator(shard=2)

        self.migrated_ids: set[int] = set()
        #: per-candidate count of migrated followees (incremental contagion state)
        self._migrated_followee_count: dict[int, int] = {}
        #: per-candidate Counter of migrated followees' current instances
        self._followee_instances: dict[int, Counter] = {}
        #: per-agent migrated-followee lists for the boost picker; valid only
        #: during materialisation, when the migrated set is frozen
        self._boost_followees: dict[int, list[SimUser]] = {}
        #: columnar dynamics state (built lazily on the first tick)
        self._columns = None
        self._dyn_bounds: list[tuple[int, int]] | None = None
        self._dyn_rngs: list[np.random.Generator] | None = None
        #: migrant handles for the chatter stage (frozen before sharding)
        self._migrant_handles: list[str] = []
        self._simulated = False

    # -- public API ---------------------------------------------------------------

    def simulate(self) -> None:
        """Run the full event simulation (idempotence-guarded).

        Materialisation draws hundreds of thousands of bounded-integer
        batches; :func:`fast_shape_prod` short-circuits the shape
        arithmetic numpy re-dispatches on each of them (values and
        bitstream unchanged — see its docstring).

        When the active registry is live, the hot loop emits per-tick
        heartbeat events (tick index, adoptions, posts, ticks/s, ETA)
        through the event stream — the heartbeats only *read* simulation
        state and wall clocks, never an RNG: the generated world is
        byte-identical with the event stream on or off.
        """
        if self._simulated:
            raise RuntimeError("world already simulated")
        from repro import obs

        events = obs.current().events
        with fast_shape_prod():
            self._seed_pre_takeover_accounts()
            days = list(date_range(self.config.start, self.config.end))
            started = time.perf_counter()
            for tick, day in enumerate(days):
                migrated_before = len(self.migrated_ids)
                self._run_migrations(day)
                self._run_switches(day)
                if events.enabled:
                    self._dynamics_heartbeat(
                        events, tick, len(days), day, migrated_before, started
                    )
            self._materialise_content()
            self._inject_background_load()
            self._plant_crawl_failures()
        self._simulated = True

    def _dynamics_heartbeat(
        self,
        events,
        tick: int,
        ticks: int,
        day: _dt.date,
        migrated_before: int,
        started: float,
    ) -> None:
        """One progress event per simulated day of the dynamics loop."""
        elapsed = time.perf_counter() - started
        rate = (tick + 1) / elapsed if elapsed > 0 else 0.0
        events.heartbeat(
            "world.simulate",
            phase="dynamics",
            tick=tick,
            ticks=ticks,
            day=day.isoformat(),
            adoptions=len(self.migrated_ids) - migrated_before,
            migrated_total=len(self.migrated_ids),
            posts_total=self.twitter_store.tweet_count,
            ticks_per_s=round(rate, 3),
            eta_seconds=round((ticks - tick - 1) / rate, 3) if rate > 0 else None,
        )

    def twitter_api(self, faults=None, retry=None) -> TwitterAPI:
        """A fresh API client (own rate-limit state) over the world's Twitter.

        ``faults`` (a :class:`repro.faults.FaultPlan`) and ``retry`` (a
        :class:`repro.transport.RetryPolicy`) configure the client's
        transport; by default nothing is injected and calls are single-shot.
        """
        return TwitterAPI(
            self.twitter_store, self.twitter_graph, faults=faults, retry=retry
        )

    def directory(self) -> InstanceDirectory:
        """The instances.social view at collection time (self-hosts included)."""
        return InstanceDirectory.from_network(self.network)

    @property
    def migrants(self) -> list[SimUser]:
        """Ground truth: every agent that migrated (matched or not)."""
        return [a for a in self.agents.values() if a.migrated]

    @property
    def switchers(self) -> list[SimUser]:
        return [a for a in self.agents.values() if a.switch_day is not None]

    def _install_moderation_policies(self) -> None:
        """Some admins run MRF keyword filters against the toxic lexicon.

        Filtering applies to *federated* deliveries only, so authors'
        timelines (what the crawler collects) are unaffected — this models
        the real division of labour: remote filth is filtered at the border,
        local filth is the admin's manual moderation queue (§6.3).
        """
        from repro.nlp.vocabulary import TOXIC_LEXICON

        rng = self.rng.stream("moderation")
        strong_words = [w for w, weight in TOXIC_LEXICON.items() if weight >= 0.45]
        for instance in self.network.instances():
            if rng.random() < self.config.moderated_instance_fraction:
                for word in strong_words:
                    instance.policy.block_keyword(word)

    # -- phase 0: pre-takeover adopters ------------------------------------------------

    def _seed_pre_takeover_accounts(self) -> None:
        """Some candidates already own a (dormant) Mastodon account.

        The paper finds 21% of matched accounts predate the takeover; we give
        the same fraction of candidates a backdated account which activates
        if/when they migrate.
        """
        rng = self.rng.stream("pre_takeover")
        config = self.config
        empty: Counter = Counter()
        for user_id in self.candidate_ids:
            agent = self.agents[user_id]
            if rng.random() >= config.pre_takeover_account_fraction:
                continue
            age_days = int(rng.integers(35, 2000))
            created = _dt.datetime.combine(
                TAKEOVER_DATE - _dt.timedelta(days=age_days), _dt.time(15, 0)
            )
            domain = self._chooser.choose(agent, empty)
            username = self._mastodon_username(agent, domain)
            if username is None:
                continue
            instance = self.network.get_instance(domain)
            instance.register(username, display_name=agent.username, when=created)
            agent.pre_takeover_account = True
            agent.mastodon_username = username
            agent.first_username = username
            agent.current_instance = domain
            agent.first_instance = domain
            agent.mastodon_created = created
            self._chooser.record_population(domain)

    # -- phase 1: daily dynamics ----------------------------------------------------------

    def _dynamics_state(self):
        """The columnar agent state (built on first use).

        Row order is candidate order; the shard bounds and the per-shard
        generators (seeded ``derive_seed(seed, seed, "world.contagion",
        shard)``) persist across ticks, so each shard consumes one named
        stream for the whole window — the same schedule a sharded dynamics
        worker would see, which keeps the contagion draws worker-count
        invariant by construction.
        """
        if self._columns is None:
            from repro.simulation.state import AgentColumns

            self._columns = AgentColumns.from_world(self)
            self._dyn_bounds = partition_bounds(self._columns.n, self._shard_count)
            seed = self.config.seed
            self._dyn_rngs = [
                np.random.default_rng(
                    derive_seed(seed, seed, "world.contagion", index)
                )
                for index in range(len(self._dyn_bounds))
            ]
        return self._columns

    def _run_migrations(self, day: _dt.date) -> None:
        """One tick of the contagion: batched hazard test, object migration.

        The hazard is computed once per tick from start-of-tick
        migrated-followee fractions (synchronous update — DESIGN.md §5);
        each shard then draws one uniform batch over its still-unmigrated
        rows from its own persistent stream, and only the hits run the
        object-path migration (instance choice, registration, rewiring) in
        ascending row order.
        """
        cols = self._dynamics_state()
        hazard = self._contagion.hazard_batch(
            cols.ideology, cols.fraction_migrated_followees, day
        )
        agents = self.agents
        uids = cols.uids
        migrated = cols.migrated
        for shard_rng, (lo, hi) in zip(self._dyn_rngs, self._dyn_bounds):
            alive = np.flatnonzero(~migrated[lo:hi]) + lo
            if not len(alive):
                continue
            u = shard_rng.random(len(alive))
            for row in alive[u < hazard[alive]]:
                agent = agents[int(uids[row])]
                self._migrate(agent, day)
                if agent.migrated:  # username collision can abort the move
                    migrated[row] = True

    @property
    def _contagion_rng(self) -> np.random.Generator:
        return self.rng.stream("contagion-decisions")

    def _contagion_fraction(self, user_id: int) -> float:
        degree = self.twitter_graph.followee_count(user_id)
        if degree == 0:
            return 0.0
        return self._migrated_followee_count.get(user_id, 0) / degree

    def _migrate(self, agent: SimUser, day: _dt.date) -> None:
        when = _dt.datetime.combine(day, _dt.time(18, 0)) + _dt.timedelta(
            seconds=int(self._contagion_rng.integers(0, 14_000))
        )
        if not agent.pre_takeover_account:
            domain = self._choose_instance(agent)
            username = self._mastodon_username(agent, domain)
            if username is None:  # pathological collision; skip this user
                return
            self.network.get_instance(domain).register(
                username, display_name=agent.username, when=when
            )
            agent.mastodon_username = username
            agent.first_username = username
            agent.current_instance = domain
            agent.first_instance = domain
            agent.mastodon_created = when
            self._chooser.record_population(domain)
        agent.migrated = True
        agent.migration_day = day
        self.migrated_ids.add(agent.user_id)
        self._wire_mastodon_follows(agent, when)
        if agent.self_hosted:
            self._discover_follows(agent, when)
        self._notify_followers(agent)

    def _choose_instance(self, agent: SimUser) -> str:
        if self._chooser.wants_self_host(agent):
            domain = self._chooser.new_self_host_domain(agent)
            if not self.network.has_instance(domain):
                self.network.create_instance(
                    domain,
                    topic=agent.main_topic,
                    created_at=self._today_hint(agent),
                )
                # running one's own server correlates with heavy use: the
                # Figure 6 paradox (single-user instances, more statuses)
                agent.status_rate *= self.config.self_host_activity_boost
                agent.self_hosted = True
                return domain
        counts = self._followee_instances.get(agent.user_id, Counter())
        return self._chooser.choose(agent, counts)

    def _today_hint(self, agent: SimUser) -> _dt.date:
        # self-hosted instances spin up the day their owner migrates
        return agent.migration_day or TAKEOVER_DATE

    def _mastodon_username(self, agent: SimUser, domain: str) -> str | None:
        instance = self.network.get_instance(domain)
        candidates = [agent.username] if agent.same_username else []
        candidates += [f"{agent.username}_m", f"{agent.username}2", f"real{agent.username}"]
        if not agent.same_username:
            candidates.insert(0, f"{agent.username.split('_')[0]}tooter_{agent.user_id % 10_000}")
        for name in candidates:
            if not instance.has_account(name):
                return name
        return None

    def _wire_mastodon_follows(self, agent: SimUser, when: _dt.datetime) -> None:
        """Recreate the ego network on Mastodon among migrated neighbours.

        A small share of migrants never re-follow anyone (the paper's 3.6%
        following nobody / 6.01% with no followers): they still *receive*
        follows from later migrants, but import nothing themselves.
        """
        acct = agent.mastodon_acct
        assert acct is not None
        rewire_rng = self.rng.stream("rewire")
        # Self-hosters are the most dedicated users: they always import their
        # follow list and stay discoverable (part of the Fig. 6 paradox).
        agent.rewires_follows = agent.self_hosted or (
            rewire_rng.random() >= self.config.no_rewire_fraction
        )
        agent.discoverable = agent.self_hosted or (
            rewire_rng.random() >= self.config.undiscoverable_fraction
        )
        if agent.rewires_follows:
            for followee_id in self.twitter_graph.followees_of(agent.user_id):
                other = self.agents.get(followee_id)
                if other is None or not other.migrated or other.mastodon_acct is None:
                    continue
                if other.discoverable:
                    self.network.follow(acct, other.mastodon_acct, when)
        if agent.discoverable:
            for follower_id in self.twitter_graph.followers_of(agent.user_id):
                other = self.agents.get(follower_id)
                if other is None or not other.migrated or other.mastodon_acct is None:
                    continue
                if other.rewires_follows and other.mastodon_acct != acct:
                    self.network.follow(other.mastodon_acct, acct, when)

    def _discover_follows(self, agent: SimUser, when: _dt.datetime) -> None:
        """Dedicated self-hosters build their network actively.

        Beyond re-following their Twitter ego network, they discover accounts
        through hashtags and directories — extra follows to random earlier
        migrants, some of whom follow back.  This is half of the Figure 6
        paradox: single-user instances, larger social networks.
        """
        rng = self.rng.stream("discovery")
        pool = [
            uid for uid in self.migrated_ids
            if uid != agent.user_id and self.agents[uid].discoverable
        ]
        if not pool:
            return
        k = min(len(pool), int(8 + agent.engagement * 14))
        picks = rng.choice(len(pool), size=k, replace=False)
        acct = agent.mastodon_acct
        assert acct is not None
        for idx in picks:
            other = self.agents[pool[int(idx)]]
            if other.mastodon_acct is None or other.mastodon_acct == acct:
                continue
            self.network.follow(acct, other.mastodon_acct, when)
            if rng.random() < 0.35:  # follow-backs
                self.network.follow(other.mastodon_acct, acct, when)

    def _notify_followers(self, agent: SimUser) -> None:
        """Update incremental contagion state after ``agent`` migrated."""
        domain = agent.current_instance
        cols = self._columns
        agents = self.agents
        followee_count = self._migrated_followee_count
        followee_instances = self._followee_instances
        for follower_id in self.twitter_graph.followers_of(agent.user_id):
            follower = agents.get(follower_id)
            if follower is not None and follower.role == "candidate":
                followee_count[follower_id] = followee_count.get(follower_id, 0) + 1
                counts = followee_instances.get(follower_id)
                if counts is None:
                    counts = Counter()
                    followee_instances[follower_id] = counts
                counts[domain] += 1
                if cols is not None:
                    cols.migrated_followees[cols.row_of(follower_id)] += 1

    # -- switching ------------------------------------------------------------------------

    def _run_switches(self, day: _dt.date) -> None:
        # agents with no migrated followees (or who already switched) cannot
        # draw from the switch RNG — ``propose_switch`` returns before its
        # random draw for both — so skipping them here is bitstream-neutral
        followee_instances = self._followee_instances
        propose = self._switcher.propose_switch
        for user_id in sorted(self.migrated_ids):
            agent = self.agents[user_id]
            if agent.switch_day is not None or agent.migration_day == day:
                continue
            counts = followee_instances.get(user_id)
            if not counts:
                continue
            target = propose(agent, counts)
            if target is not None:
                self._switch(agent, target, day)

    def _switch(self, agent: SimUser, target: str, day: _dt.date) -> None:
        when = _dt.datetime.combine(day, _dt.time(20, 0))
        instance = self.network.get_instance(target)
        username = agent.mastodon_username
        assert username is not None and agent.current_instance is not None
        name = username
        suffix = 0
        while instance.has_account(name):
            suffix += 1
            name = f"{username}{suffix}"
        instance.register(name, display_name=agent.username, when=when)
        old_acct = agent.mastodon_acct
        assert old_acct is not None
        new_acct = f"{name}@{target}"
        self.network.move_account(old_acct, new_acct, when)
        old_domain = agent.current_instance
        agent.mastodon_username = name
        agent.second_instance = target
        agent.current_instance = target
        agent.switch_day = day
        self._chooser.record_population(target)
        # followers' instance counters track the move
        for follower_id in self.twitter_graph.followers_of(agent.user_id):
            counts = self._followee_instances.get(follower_id)
            if counts is not None and counts.get(old_domain, 0) > 0:
                counts[old_domain] -= 1
                counts[target] += 1

    # -- phase 2: content materialisation ---------------------------------------------------

    def _materialise_content(self) -> None:
        """Plan timelines on shards, then apply them at the dataset boundary.

        Stage A (``world.materialise`` / ``world.chatter``) runs on the
        :class:`~repro.parallel.WorldShardRunner`: migrants in migration
        order and chatterers in id order, partitioned into contiguous
        shards, each planning its agents' full timelines as post
        accumulator columns with a per-(stage, shard) derived seed.  Stage
        B (:func:`repro.simulation.materialise.apply_plans`) walks the
        payloads serially in shard order — the canonical agent order — so
        id assignment, timeline insertion and boost resolution happen
        exactly once, in one order, regardless of worker count.
        """
        from repro import obs
        from repro.parallel import WorldShardRunner
        from repro.simulation.materialise import apply_plans

        events = obs.current().events
        # frozen before the runner forks: shard payloads may read it
        self._migrant_handles = [
            a.first_acct for a in self.migrants if a.first_acct is not None
        ]
        # migration order, so boosters find their earlier-migrated followees'
        # statuses already materialised when plans are applied
        ordered = sorted(
            self.migrated_ids,
            key=lambda uid: (self.agents[uid].migration_day, uid),
        )
        with WorldShardRunner(
            self,
            seed=self.config.seed,
            workers=self._workers,
            backend=self._backend,
            shard_count=self._shard_count,
        ) as runner:
            payloads = runner.map_stage(
                "world.materialise", "repro.simulation.materialise:plan_shard", ordered
            )
            chatter_payloads = runner.map_stage(
                "world.chatter",
                "repro.simulation.materialise:chatter_shard",
                list(self.chatter_ids),
            )
        apply_plans(self, payloads, chatter_payloads, events)

    def _boost_candidate(self, agent: SimUser, rng: np.random.Generator):
        """A recent status by a migrated followee, if any exists yet.

        Content is materialised in migration order, so earlier migrants'
        statuses already exist when later migrants boost.  The migrated set
        is frozen by then, so the followee list is computed once per agent;
        the five candidates are an ordered uniform draw without replacement
        — the same distribution as shuffling the whole list and taking its
        first five, without permuting hub-sized followee lists per boost.
        """
        cached = self._boost_followees.get(agent.user_id)
        if cached is None:
            cached = [
                self.agents[f]
                for f in self.twitter_graph.followees_of(agent.user_id)
                if f in self.agents and self.agents[f].migrated
            ]
            self._boost_followees[agent.user_id] = cached
        n = len(cached)
        if n == 0:
            return None
        if n == 1:
            picks = (0,)
        else:
            # Partial Fisher-Yates over a virtual index array: the first k
            # swap targets are an ordered uniform k-sample without
            # replacement, identical in distribution to rng.choice(...,
            # replace=False) but needing only one batched uniform draw.
            k = 5 if n > 5 else n
            draws = rng.random(k)
            mapping: dict[int, int] = {}
            picks = []
            for i in range(k):
                j = i + int(draws[i] * (n - i))
                if j >= n:  # guard against float rounding at draws[i] ~ 1.0
                    j = n - 1
                picks.append(mapping.get(j, j))
                mapping[j] = mapping.get(i, i)
        for idx in picks:
            other = cached[int(idx)]
            if other.first_instance is None:
                continue
            instance = self.network.get_instance(other.first_instance)
            username = other.first_username or other.mastodon_username
            if username is None or not instance.has_account(username):
                continue
            originals = instance.original_statuses_of(username)
            if originals:
                return originals[int(rng.integers(0, len(originals)))]
        return None

    # -- phase 3: background load and failure injection ------------------------------------

    def _inject_background_load(self) -> None:
        """Aggregate registrations/logins/statuses for untracked users (Fig. 3)."""
        config = self.config
        rng = self.rng.stream("background")
        total_migrants = max(1, len(self.migrants))
        intensity_sum = sum(
            self.timeline.intensity(day) for day in date_range(config.start, config.end)
        )
        daily_new = (
            config.background_registration_multiplier * total_migrants / max(1.0, intensity_sum)
        )
        weights = np.array(
            [max(spec.weight, 1e-6) for spec in self.instance_specs]
        )
        weights = weights / weights.sum()
        base_logins = np.array(
            [20.0 * spec.weight * total_migrants for spec in self.instance_specs]
        )
        for day in date_range(config.start, config.end):
            intensity = self.timeline.intensity(day)
            registrations = rng.poisson(daily_new * intensity * weights)
            # one batched draw per day instead of one scalar poisson per
            # instance; poisson_batch's element-order contract keeps the
            # bitstream identical to the per-spec loop it replaces
            login_draws = poisson_batch(rng, base_logins * (0.15 + 0.85 * intensity))
            for spec, regs, logins in zip(self.instance_specs, registrations, login_draws):
                instance = self.network.get_instance(spec.domain)
                logins = int(logins)
                statuses = int(logins * config.background_statuses_per_login)
                instance.record_aggregate_activity(
                    day,
                    statuses=statuses,
                    logins=logins,
                    registrations=int(regs),
                )

    def _plant_crawl_failures(self) -> None:
        """Account states and instance downtime, at the paper's §3.2 rates."""
        config = self.config
        rng = self.rng.stream("failures")
        for agent in self.migrants:
            roll = rng.random()
            user = self.twitter_store.get_user(agent.user_id)
            if roll < config.suspended_fraction:
                user.state = AccountState.SUSPENDED
            elif roll < config.suspended_fraction + config.deactivated_fraction:
                user.state = AccountState.DEACTIVATED
            elif roll < (
                config.suspended_fraction
                + config.deactivated_fraction
                + config.protected_fraction
            ):
                user.state = AccountState.PROTECTED
        # Downtime cost the paper 11.58% of Mastodon timelines (a share of
        # *users*, not instances).  Small and mid-size instances, strained by
        # the migration wave, go down until that user share is reached; the
        # professionally-run flagships stay up.
        populations = Counter()
        for agent in self.migrants:
            if agent.first_instance is not None:
                populations[agent.first_instance] += 1
        target_users = config.instance_down_fraction * sum(populations.values())
        candidates = [
            domain for domain in populations if domain not in self._flagships
        ]
        rng.shuffle(candidates)
        downed_users = 0.0
        for domain in candidates:
            if downed_users >= target_users:
                break
            instance = self.network.get_instance(domain)
            instance.down = True
            downed_users += populations[domain]


_LEGACY_KWARGS_WARNED = False


def build_world(
    config: SimConfig | None = None,
    *,
    workers: int = 1,
    backend: str = "serial",
    shard_count: int | None = None,
    **legacy,
) -> World:
    """Build and simulate a world in one call.

    The supported form takes a validated :class:`SimConfig`::

        build_world(SimConfig(seed=1, scale=0.005, contagion_weight=0.0))

    ``workers``/``backend`` configure the sharded materialisation planner;
    the dataset is byte-identical for any setting.

    The legacy keyword form — ``build_world(seed=1, scale=0.005, ...)`` —
    still works: the kwargs are mapped onto a :class:`SimConfig`
    field-for-field (one :class:`DeprecationWarning` per process).  Both
    call forms produce byte-identical datasets, which
    ``tests/simulation/test_simconfig_api.py`` pins.
    """
    from repro import obs

    global _LEGACY_KWARGS_WARNED
    if config is not None and legacy:
        raise TypeError(
            "pass either a SimConfig or legacy keyword overrides, not both"
        )
    if config is None:
        if legacy and not _LEGACY_KWARGS_WARNED:
            warnings.warn(
                "build_world(seed=..., scale=..., **overrides) is deprecated; "
                "pass build_world(SimConfig(...)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            _LEGACY_KWARGS_WARNED = True
        config = SimConfig(**legacy)
    elif not isinstance(config, WorldConfig):
        raise TypeError(
            f"build_world expects a SimConfig, got {type(config).__name__}"
        )

    registry = obs.current()
    # The build allocates millions of small, acyclic objects (tweets,
    # statuses, postings); the cyclic collector's threshold-triggered full
    # sweeps walk that whole heap to find nothing.  Defer cycle collection
    # to the end of the build and run one sweep on exit.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        with registry.span("build_world") as span:
            with registry.span("world.init"):
                world = World(
                    config,
                    workers=workers,
                    backend=backend,
                    shard_count=shard_count,
                )
            with registry.span("world.simulate"):
                world.simulate()
            span.annotate(
                seed=config.seed,
                scale=config.scale,
                agents=len(world.agents),
                migrants=len(world.migrants),
                tweets=world.twitter_store.tweet_count,
            )
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()
    return world
