"""The deterministic sharded-parallel execution engine.

:class:`ShardEngine` runs a collection stage's per-item work over seeded
shards (see :mod:`repro.parallel.sharding`): every shard gets its own
derived fault-injector slice, backoff-jitter stream, rate-limiter quota,
virtual-clock segment and (when the run is instrumented) its own metrics
registry, whose contents are folded back into the main trace in shard
order.  Two backends execute the same shard jobs through the same code
path:

- ``serial`` — an in-process loop (the default; what tests and CI use to
  prove equivalence);
- ``multiprocessing`` — a ``fork`` worker pool; the world is inherited by
  the children copy-on-write, only shard payloads cross the process
  boundary.

Determinism contract: a shard's outcome depends only on the world, the
collection config and the shard's coordinates — never on the backend, the
worker count or scheduling order.  The order-restoring merge (shards are
contiguous slices, merged by concatenation in shard index order) therefore
produces byte-identical datasets at any worker count, which
``tests/parallel/test_serial_equivalence.py`` proves against the golden
digests.
"""

from __future__ import annotations

import dataclasses
import importlib
import multiprocessing
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import obs
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.parallel.sharding import (
    derive_seed,
    partition,
    round_robin_makespan,
)
from repro.transport import RetryPolicy

BACKENDS = ("serial", "multiprocessing")


def fork_available() -> bool:
    """Whether the ``multiprocessing`` backend can run on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass(frozen=True)
class ShardContext:
    """One shard's derived execution context.

    ``fault_plan`` is the run's plan re-seeded with the shard's derived
    seed, so each shard draws an independent fault stream; the per-shard
    clients built from it carry fresh rate-limiter/virtual-clock state
    (the shard's own clock segment) and a fresh circuit-breaker board.
    """

    stage: str
    index: int
    count: int
    seed: int
    fault_plan: FaultPlan
    retry_policy: RetryPolicy

    def twitter_api(self, world):
        """A per-shard Twitter client: own limiter, clock and injector."""
        return world.twitter_api(faults=self.fault_plan, retry=self.retry_policy)

    def mastodon_client(self, world):
        """A per-shard Mastodon client: own clock, breaker and injector."""
        from repro.fediverse.api import MastodonClient

        return MastodonClient(
            world.network, faults=self.fault_plan, retry=self.retry_policy
        )


@dataclass
class ShardAccounting:
    """Budget accounting one shard reports back for the merge.

    ``virtual_seconds`` is the shard's elapsed virtual clock — rate-limit
    waits plus backoff sleeps — the duration a real crawler would have
    spent on the shard.  Request counters live in the shard registry and
    sum to the serial totals when merged.
    """

    virtual_seconds: float = 0.0
    requests: int = 0
    injected: int = 0

    def absorb_twitter(self, api) -> None:
        self.virtual_seconds += float(api.limiter.clock_seconds)
        self.requests += sum(api.limiter.request_counts.values())
        if api.transport.injector is not None:
            self.injected += api.transport.injector.injected_total

    def absorb_mastodon(self, client) -> None:
        self.virtual_seconds += float(client.transport.clock.now())
        self.requests += client.request_count
        if client.transport.injector is not None:
            self.injected += client.transport.injector.injected_total


@dataclass(frozen=True)
class ShardJob:
    """One schedulable unit: a stage function applied to one shard."""

    fn_path: str  # "package.module:function", resolved lazily in the worker
    context: ShardContext
    items: tuple


@dataclass
class ShardResult:
    """What a shard sends back across the process boundary."""

    index: int
    payload: Any
    virtual_seconds: float
    requests: int
    injected: int
    registry: obs.MetricsRegistry | None


@dataclass
class StageOutcome:
    """A sharded stage's merged view, payloads in shard order."""

    stage: str
    payloads: list[Any]
    items: int
    shards: int
    workers: int
    shard_virtual: list[float] = field(default_factory=list)
    requests: int = 0
    injected: int = 0

    @property
    def virtual_total(self) -> float:
        """Serial virtual duration: the sum over every shard."""
        return sum(self.shard_virtual)

    @property
    def virtual_makespan(self) -> float:
        """Parallel virtual duration under round-robin scheduling."""
        return round_robin_makespan(self.shard_virtual, self.workers)


# -- worker side ---------------------------------------------------------------

#: The active runtime, set in the parent before any shard executes.  The
#: ``fork`` backend's children inherit it copy-on-write; the serial backend
#: reads it in-process.  Holding the world here keeps it out of every job
#: payload.
_RUNTIME: "_Runtime | None" = None


@dataclass
class _Runtime:
    world: Any
    config: Any
    instrumented: bool
    #: ``(rss, trace_allocs)`` when the parent registry accounts memory, so
    #: shard registries mirror the parent's accounting mode; None otherwise.
    memory: tuple[bool, bool] | None = None


def _resolve(fn_path: str) -> Callable:
    module_name, _, attr = fn_path.partition(":")
    if not attr:
        raise ConfigError(f"malformed stage function path {fn_path!r}")
    return getattr(importlib.import_module(module_name), attr)


def _execute_shard(job: ShardJob) -> ShardResult:
    """Run one shard job against the inherited runtime (any backend)."""
    runtime = _RUNTIME
    if runtime is None:
        raise RuntimeError("no active shard runtime; use ShardEngine as a context manager")
    fn = _resolve(job.fn_path)
    registry = obs.MetricsRegistry() if runtime.instrumented else obs.NOOP
    accountant = None
    if runtime.instrumented:
        registry.watch_default_counters()
        if runtime.memory is not None:
            rss, trace_allocs = runtime.memory
            accountant = registry.enable_memory(rss=rss, trace_allocs=trace_allocs)
    accounting = ShardAccounting()
    with obs.use(registry):
        with registry.span(f"collect.{job.context.stage}.shard") as span:
            span.annotate(
                shard=job.context.index,
                stage=job.context.stage,
                items=len(job.items),
            )
            payload = fn(
                runtime.world,
                runtime.config,
                job.context,
                list(job.items),
                accounting,
            )
            span.annotate(
                virtual_seconds=accounting.virtual_seconds,
                requests=accounting.requests,
            )
    if accountant is not None:
        accountant.close()
    return ShardResult(
        index=job.context.index,
        payload=payload,
        virtual_seconds=accounting.virtual_seconds,
        requests=accounting.requests,
        injected=accounting.injected,
        registry=registry if runtime.instrumented else None,
    )


# -- the world-generation shard runner ----------------------------------------

#: The world-generation runtime (usually the :class:`World` being built).
#: Like :data:`_RUNTIME` it is set in the parent before any shard executes
#: and inherited copy-on-write by forked workers.
_WORLD_RUNTIME: Any = None


@dataclass(frozen=True)
class WorldShardContext:
    """One world-generation shard's coordinates and derived seed."""

    stage: str
    index: int
    count: int
    seed: int

    def rng(self):
        """A fresh generator seeded for exactly this (stage, shard)."""
        import numpy as _np

        return _np.random.default_rng(self.seed)


@dataclass(frozen=True)
class _WorldShardJob:
    fn_path: str
    context: WorldShardContext
    items: tuple


def _execute_world_shard(job: _WorldShardJob) -> Any:
    runtime = _WORLD_RUNTIME
    if runtime is None:
        raise RuntimeError(
            "no active world shard runtime; use WorldShardRunner as a context manager"
        )
    fn = _resolve(job.fn_path)
    return fn(runtime, job.context, list(job.items))


class WorldShardRunner:
    """Deterministic sharded map for world-generation stages.

    The lightweight sibling of :class:`ShardEngine`: no fault plans, retry
    policies or per-shard metric registries — world generation needs only
    the determinism contract.  Items are partitioned into contiguous
    shards, shard ``i`` of stage ``s`` computes with the seed
    ``derive_seed(seed, seed, s, i)``, and payloads come back in shard
    order, so concatenating them restores item order.  A shard's payload
    is a pure function of (runtime, stage, shard items, derived seed) —
    shard functions MUST NOT mutate the runtime — which makes the merged
    result independent of the worker count and backend, the property
    ``tests/simulation/test_world_sharded.py`` proves byte-identically.
    """

    def __init__(
        self,
        runtime: Any,
        *,
        seed: int,
        workers: int = 1,
        backend: str = "serial",
        shard_count: int = None,
    ) -> None:
        from repro.parallel.sharding import SHARD_COUNT

        if backend not in BACKENDS:
            raise ConfigError(
                f"unknown parallel backend {backend!r} (known: {', '.join(BACKENDS)})"
            )
        if workers < 1:
            raise ConfigError(f"workers must be at least 1, got {workers}")
        if backend == "multiprocessing" and not fork_available():
            raise ConfigError(
                "the multiprocessing backend needs the 'fork' start method; "
                "use backend='serial' on this platform"
            )
        self.runtime = runtime
        self.seed = seed
        self.workers = workers
        self.backend = backend
        self.shard_count = shard_count if shard_count else SHARD_COUNT
        self._pool = None
        self._previous: Any = None

    def __enter__(self) -> "WorldShardRunner":
        global _WORLD_RUNTIME
        self._previous = _WORLD_RUNTIME
        _WORLD_RUNTIME = self.runtime
        if self.backend == "multiprocessing" and self.workers > 1:
            context = multiprocessing.get_context("fork")
            # children fork now and inherit the runtime copy-on-write; the
            # runtime must not change between here and the last map_stage
            self._pool = context.Pool(processes=self.workers)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        global _WORLD_RUNTIME
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        _WORLD_RUNTIME = self._previous
        return False

    def map_stage(self, stage: str, fn_path: str, items: Sequence) -> list:
        """Payloads of ``fn_path`` over seeded shards of ``items``, in shard
        order (empty shards are skipped; the derived seeds are positional,
        so skipping cannot shift another shard's stream)."""
        jobs = [
            _WorldShardJob(
                fn_path=fn_path,
                context=WorldShardContext(
                    stage=stage,
                    index=index,
                    count=self.shard_count,
                    seed=derive_seed(self.seed, self.seed, stage, index),
                ),
                items=tuple(shard),
            )
            for index, shard in enumerate(partition(items, self.shard_count))
            if shard
        ]
        if self._pool is not None:
            return self._pool.map(_execute_world_shard, jobs)
        return [_execute_world_shard(job) for job in jobs]


# -- the engine ----------------------------------------------------------------


class ShardEngine:
    """Runs sharded stages for one collection run.

    Use as a context manager around the pipeline's stages::

        with ShardEngine(world, config) as engine:
            outcome = engine.map_stage(
                "tweet_search",
                "repro.collection.shards:tweet_search_shard",
                queries,
            )

    The engine owns the backend (serial loop or ``fork`` pool), activates
    the shared runtime the workers read, merges shard registries into the
    ambient :func:`repro.obs.current` registry in shard order, and keeps a
    per-stage virtual-time report for the parallel benchmarks.
    """

    def __init__(self, world, config) -> None:
        workers = getattr(config, "workers", 1)
        backend = getattr(config, "backend", "serial")
        shards = getattr(config, "shard_count", None)
        if workers < 1:
            raise ConfigError(f"workers must be at least 1, got {workers}")
        if backend not in BACKENDS:
            raise ConfigError(
                f"unknown parallel backend {backend!r} (known: {', '.join(BACKENDS)})"
            )
        if backend == "multiprocessing" and not fork_available():
            raise ConfigError(
                "the multiprocessing backend needs the 'fork' start method; "
                "use backend='serial' on this platform"
            )
        if shards is None or shards < 1:
            raise ConfigError(f"shard_count must be at least 1, got {shards}")
        self.world = world
        self.config = config
        self.workers = workers
        self.backend = backend
        self.shard_count = shards
        self.stage_reports: dict[str, dict] = {}
        self.injected_total = 0
        self._pool = None
        self._previous_runtime: _Runtime | None = None

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ShardEngine":
        global _RUNTIME
        self._previous_runtime = _RUNTIME
        registry = obs.current()
        accountant = registry.tracer.memory
        _RUNTIME = _Runtime(
            world=self.world,
            config=self.config,
            instrumented=registry.enabled,
            memory=(
                (accountant.rss, accountant.trace_allocs)
                if accountant is not None
                else None
            ),
        )
        if self.backend == "multiprocessing" and self.workers > 1:
            context = multiprocessing.get_context("fork")
            # Children fork *now* and inherit the runtime (world included)
            # copy-on-write; job payloads stay small.
            self._pool = context.Pool(processes=self.workers)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        global _RUNTIME
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        _RUNTIME = self._previous_runtime
        return False

    # -- execution ---------------------------------------------------------

    def map_stage(self, stage: str, fn_path: str, items: Sequence) -> StageOutcome:
        """Run ``items`` through ``fn_path`` in seeded shards and merge.

        Returns the shard payloads in shard index order (shards are
        contiguous item slices, so concatenating payloads restores item
        order).  Shard registries are merged into the ambient registry —
        also in shard order — so counters sum, histograms pool and the
        shard spans land under the currently open stage span.
        """
        shards = partition(items, self.shard_count)
        plan = self.config.fault_plan
        jobs = [
            ShardJob(
                fn_path=fn_path,
                context=ShardContext(
                    stage=stage,
                    index=index,
                    count=self.shard_count,
                    seed=derive_seed(self.config.shard_seed, plan.seed, stage, index),
                    fault_plan=dataclasses.replace(
                        plan,
                        seed=derive_seed(
                            self.config.shard_seed, plan.seed, stage, index
                        ),
                    ),
                    retry_policy=self.config.retry_policy,
                ),
                items=tuple(shard),
            )
            for index, shard in enumerate(shards)
            if shard
        ]
        if self._pool is not None:
            results = self._pool.map(_execute_shard, jobs)
        else:
            results = [_execute_shard(job) for job in jobs]

        registry = obs.current()
        outcome = StageOutcome(
            stage=stage,
            payloads=[],
            items=len(items),
            shards=len(jobs),
            workers=self.workers,
        )
        for result in results:  # pool.map preserves job order
            outcome.payloads.append(result.payload)
            outcome.shard_virtual.append(result.virtual_seconds)
            outcome.requests += result.requests
            outcome.injected += result.injected
            if result.registry is not None:
                registry.merge(result.registry)
        self.injected_total += outcome.injected
        self.stage_reports[stage] = {
            "items": outcome.items,
            "shards": outcome.shards,
            "workers": outcome.workers,
            "requests": outcome.requests,
            "virtual_total": outcome.virtual_total,
            "virtual_makespan": outcome.virtual_makespan,
        }
        return outcome

    # -- reporting ---------------------------------------------------------

    def virtual_report(self) -> dict:
        """Per-stage and total virtual timings of the sharded crawl."""
        total = sum(r["virtual_total"] for r in self.stage_reports.values())
        makespan = sum(r["virtual_makespan"] for r in self.stage_reports.values())
        return {
            "backend": self.backend,
            "workers": self.workers,
            "shards": self.shard_count,
            "stages": dict(self.stage_reports),
            "virtual_total": total,
            "virtual_makespan": makespan,
        }


__all__ = [
    "BACKENDS",
    "ShardAccounting",
    "ShardContext",
    "ShardEngine",
    "ShardJob",
    "ShardResult",
    "StageOutcome",
    "WorldShardContext",
    "WorldShardRunner",
    "fork_available",
]
