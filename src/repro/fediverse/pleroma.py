"""A Pleroma-flavoured instance.

Section 2 of the paper: ActivityPub "makes Mastodon compatible with other
decentralised micro-blogging implementations (notably, Pleroma)".  The
substrate honours that: a :class:`PleromaInstance` joins the same
:class:`~repro.fediverse.network.FediverseNetwork`, federates with Mastodon
instances through the identical activity exchange, and is crawled by the
same client — the protocol is the compatibility layer, exactly as in the
real fediverse.

Behavioural differences kept from the real software:

- ``software`` identifies as ``pleroma`` (NodeInfo-style);
- statuses default to Pleroma's smaller API page size (20 vs 40);
- the MRF keyword filter ships enabled with a conservative default policy
  (Pleroma exposes MRF prominently; the paper's companion work [11] studies
  exactly this).
"""

from __future__ import annotations

import datetime as _dt

from repro.fediverse.instance import MastodonInstance

#: Pleroma's default statuses page size.
PLEROMA_STATUSES_PAGE_SIZE = 20

#: A conservative stock MRF keyword policy (operators customise it).
DEFAULT_MRF_KEYWORDS: tuple[str, ...] = ("scum", "moron", "morons")


class PleromaInstance(MastodonInstance):
    """A Pleroma server: same protocol, different implementation defaults."""

    software = "pleroma"
    statuses_page_size = PLEROMA_STATUSES_PAGE_SIZE

    def __init__(
        self,
        domain: str,
        title: str = "",
        topic: str = "general",
        created_at: _dt.date = _dt.date(2017, 3, 1),
        open_registrations: bool = True,
        enable_default_mrf: bool = True,
    ) -> None:
        super().__init__(
            domain,
            title=title,
            topic=topic,
            created_at=created_at,
            open_registrations=open_registrations,
        )
        if enable_default_mrf:
            for keyword in DEFAULT_MRF_KEYWORDS:
                self.policy.block_keyword(keyword)

    def nodeinfo(self) -> dict:
        """A NodeInfo-style software descriptor (what crawlers fingerprint)."""
        return {
            "software": {"name": self.software, "version": "2.4.x"},
            "openRegistrations": self.open_registrations,
            "usage": {"users": {"total": self.user_count}},
        }


def nodeinfo_for(instance: MastodonInstance) -> dict:
    """NodeInfo for any instance (Pleroma overrides with richer detail)."""
    if isinstance(instance, PleromaInstance):
        return instance.nodeinfo()
    return {
        "software": {"name": instance.software, "version": "4.x"},
        "openRegistrations": instance.open_registrations,
        "usage": {"users": {"total": instance.user_count}},
    }
