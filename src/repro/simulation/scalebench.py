"""Worldgen scaling bench: plan-mode builds at paper-sized scales.

The object world tops out around scale 0.05 on a laptop; the columnar
plan mode (:func:`repro.simulation.plan_world`) runs the same contagion
draw schedule on arrays only, which is what lets the engine's scaling
envelope be *measured* at scale 1.0 (the paper's 136,009 matched
migrants) instead of extrapolated.

Usage::

    python -m repro.simulation.scalebench                 # 0.1 and 1.0
    python -m repro.simulation.scalebench --scales 0.02,0.1,1.0
    python -m repro.simulation.scalebench --no-record     # print only

Each scale contributes one row to the ``worldgen_scale`` section of
``BENCH_pipeline.json`` and one ``worldgen.plan`` row per scale to
``BENCH_history.jsonl`` — the same trajectory ``python -m
repro.obs.bench_report --check`` gates.  Every recorded row carries the
**memory ceiling** it was recorded under (``--memory-ceiling-mb``,
default 512): the bench exits non-zero if a run's peak RSS crosses it,
and ``bench_report --check`` re-validates the recorded rows, so a
memory regression at scale 1.0 fails CI even though CI never runs the
object world at that scale.

Peak RSS is read from ``VmHWM`` after resetting the kernel's high-water
mark before each scale (``/proc/self/clear_refs``), so each row is a
faithful per-scale peak even inside an already-large process.  Where the
reset is unavailable the reading falls back to ``ru_maxrss`` (process
lifetime), which is why scales still run in ascending order.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import resource
import subprocess
import sys
import time
from pathlib import Path

from repro.obs.bench_report import append_history_row, default_history_path
from repro.simulation.config import SimConfig
from repro.simulation.state import plan_world

DEFAULT_SCALES = (0.1, 1.0)
#: Recorded plan-mode memory budget; scale 1.0 measures ~230MB, so 512MB
#: flags a ~2x blow-up while staying robust to allocator noise.
DEFAULT_CEILING_MB = 512

_REPO_ROOT = Path(__file__).resolve().parents[3]
PIPELINE_ARTIFACT = _REPO_ROOT / "BENCH_pipeline.json"


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def _reset_peak_rss() -> None:
    """Reset the kernel's per-process RSS high-water mark (Linux).

    Writing ``5`` to ``/proc/self/clear_refs`` zeroes ``VmHWM``, so the
    next reading reflects the peak *since this call* rather than the
    process lifetime — which is what makes the ceiling meaningful when
    the bench runs inside an already-large process (a test session, a
    notebook).  Silently a no-op where the file doesn't exist.
    """
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
    except OSError:
        pass


def _peak_rss_bytes() -> int:
    # Prefer VmHWM (resettable via _reset_peak_rss) over ru_maxrss
    # (process-lifetime only).
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS
    return usage if sys.platform == "darwin" else usage * 1024


def run_scale(seed: int, scale: float, shard_count: int | None = None) -> dict:
    """One plan-mode build; returns the row recorded for this scale."""
    kwargs = {} if shard_count is None else {"shard_count": shard_count}
    _reset_peak_rss()
    started = time.perf_counter()
    plan = plan_world(SimConfig(seed=seed, scale=scale), **kwargs)
    wall = time.perf_counter() - started
    return {
        "scale": scale,
        "seed": seed,
        "wall_seconds": round(wall, 4),
        "peak_rss_bytes": _peak_rss_bytes(),
        "agents": plan.agents,
        "migrants": plan.migrants,
        "tweets_planned": plan.tweets_planned,
        "statuses_planned": plan.statuses_planned,
        "column_bytes": plan.column_bytes,
    }


def record_pipeline_section(rows: list[dict], ceiling_bytes: int,
                            path: Path = PIPELINE_ARTIFACT) -> None:
    """Merge the rows into BENCH_pipeline.json's ``worldgen_scale`` key."""
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload["worldgen_scale"] = {
        "memory_ceiling_bytes": ceiling_bytes,
        "mode": "plan",
        "rows": rows,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def record_history_rows(rows: list[dict], ceiling_bytes: int,
                        path: str | Path) -> None:
    """One ``worldgen.plan`` trajectory row per scale.

    The rows carry ``memory_ceiling_bytes`` so ``bench_report --check``
    can enforce the absolute budget in addition to its relative
    trailing-median gates.
    """
    now = _dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds")
    sha = _git_sha()
    for row in rows:
        append_history_row(path, {
            "recorded_at": now,
            "git_sha": sha,
            "seed": row["seed"],
            "scale": row["scale"],
            "memory_ceiling_bytes": ceiling_bytes,
            "stages": {
                "worldgen.plan": {
                    "wall_seconds": row["wall_seconds"],
                    "peak_rss_bytes": row["peak_rss_bytes"],
                },
            },
        })


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--scales", type=str, default=",".join(
        str(s) for s in DEFAULT_SCALES))
    parser.add_argument("--shards", type=int, default=None,
                        help="shard count for the per-(stage, shard) seed "
                             "derivation (default: the engine's)")
    parser.add_argument("--memory-ceiling-mb", type=float,
                        default=DEFAULT_CEILING_MB,
                        help="absolute peak-RSS budget recorded with each "
                             "row; the bench fails if a run crosses it "
                             "(default %(default)s)")
    parser.add_argument("--no-record", action="store_true",
                        help="print the rows without touching "
                             "BENCH_pipeline.json / BENCH_history.jsonl")
    parser.add_argument("--history", type=str,
                        default=str(default_history_path()))
    args = parser.parse_args(argv)

    try:
        scales = sorted(float(s) for s in args.scales.split(",") if s.strip())
    except ValueError:
        parser.error(f"--scales must be comma-separated floats, got "
                     f"{args.scales!r}")
    if not scales:
        parser.error("--scales is empty")
    ceiling_bytes = int(args.memory_ceiling_mb * 1_048_576)

    rows = []
    for scale in scales:
        row = run_scale(args.seed, scale, shard_count=args.shards)
        rows.append(row)
        print(f"scale {scale:g}: {row['wall_seconds']:.2f}s  "
              f"rss {row['peak_rss_bytes'] / 1_048_576:.0f}MB  "
              f"agents {row['agents']}  migrants {row['migrants']}  "
              f"tweets {row['tweets_planned']}  "
              f"statuses {row['statuses_planned']}")

    if not args.no_record:
        record_pipeline_section(rows, ceiling_bytes)
        record_history_rows(rows, ceiling_bytes, args.history)
        print(f"recorded {len(rows)} row(s) to {PIPELINE_ARTIFACT.name} "
              f"and {Path(args.history).name}")

    over = [r for r in rows if r["peak_rss_bytes"] > ceiling_bytes]
    if over:
        for row in over:
            print(f"MEMORY CEILING EXCEEDED at scale {row['scale']:g}: "
                  f"{row['peak_rss_bytes'] / 1_048_576:.0f}MB > "
                  f"{ceiling_bytes / 1_048_576:.0f}MB", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
