"""Tests for repro.obs.bench_report: the cross-run perf trajectory."""

import json

from repro.obs.bench_report import (
    append_history_row,
    check_memory_ceilings,
    check_regressions,
    format_history,
    load_history,
    main,
)


def _row(wall: float, scale: float = 0.01, rss: int = 100_000_000, **extra) -> dict:
    return {
        "recorded_at": extra.pop("recorded_at", "2026-08-01T00:00:00+00:00"),
        "git_sha": extra.pop("git_sha", "abc123"),
        "seed": 7,
        "scale": scale,
        "stages": {
            "collect_dataset": {
                "wall_seconds": wall,
                "peak_rss_bytes": rss,
            }
        },
        **extra,
    }


class TestHistoryFile:
    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        append_history_row(path, _row(1.0))
        append_history_row(path, _row(1.1))
        rows = load_history(path)
        assert len(rows) == 2
        assert rows[0]["stages"]["collect_dataset"]["wall_seconds"] == 1.0
        # one JSON object per line, append-only
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []


class TestCheckRegressions:
    def test_steady_trajectory_passes(self):
        rows = [_row(1.0), _row(1.05), _row(0.98), _row(1.1)]
        assert check_regressions(rows) == []

    def test_wall_regression_is_flagged(self):
        rows = [_row(1.0), _row(1.0), _row(1.0), _row(1.6)]
        findings = check_regressions(rows)
        assert len(findings) == 1
        f = findings[0]
        assert f["stage"] == "collect_dataset"
        assert f["metric"] == "wall_seconds"
        assert f["median"] == 1.0
        assert f["ratio"] == 1.6

    def test_memory_regression_uses_its_own_threshold(self):
        rows = [_row(1.0, rss=100), _row(1.0, rss=100), _row(1.0, rss=140)]
        # 1.4x memory growth is inside the 1.5x gate
        assert check_regressions(rows) == []
        rows.append(_row(1.0, rss=200))
        findings = check_regressions(rows)
        assert [f["metric"] for f in findings] == ["peak_rss_bytes"]

    def test_median_is_over_same_scale_rows_only(self):
        # a slow big-scale history must not mask a small-scale regression
        rows = [
            _row(50.0, scale=0.01),
            _row(1.0, scale=0.002),
            _row(1.0, scale=0.002),
            _row(2.0, scale=0.002),
        ]
        findings = check_regressions(rows)
        assert len(findings) == 1
        assert findings[0]["median"] == 1.0

    def test_first_row_at_a_new_scale_passes(self):
        rows = [_row(1.0, scale=0.01), _row(99.0, scale=0.1)]
        assert check_regressions(rows) == []

    def test_single_row_passes(self):
        assert check_regressions([_row(1.0)]) == []

    def test_window_bounds_the_trailing_median(self):
        # six old fast runs, then a slow regime the window has accepted
        rows = [_row(1.0)] * 6 + [_row(10.0)] * 4 + [_row(11.0)]
        # window=4 compares against the recent slow regime: 1.1x, passes
        assert check_regressions(rows, window=4) == []
        # a wide window reaches back to the fast era and flags the drift
        findings = check_regressions(rows, window=10)
        assert len(findings) == 1
        assert findings[0]["median"] == 1.0

    def test_custom_threshold(self):
        rows = [_row(1.0), _row(1.0), _row(1.3)]
        assert len(check_regressions(rows)) == 1  # 1.3x > default 1.25x
        assert check_regressions(rows, wall_threshold=1.5) == []

    def test_micro_latency_jitter_is_below_the_noise_floor(self):
        # warm-cache quantiles are a few µs; a 2x swing there is
        # scheduler jitter, not a regression
        rows = [_row(18e-6), _row(18e-6), _row(40e-6)]
        assert check_regressions(rows) == []

    def test_regression_past_the_noise_floor_still_fires(self):
        # ...but a real blowup that crosses the floor is caught
        rows = [_row(18e-6), _row(18e-6), _row(5e-4)]
        findings = check_regressions(rows)
        assert len(findings) == 1
        assert findings[0]["metric"] == "wall_seconds"

    def test_noise_floor_does_not_shield_memory(self):
        rows = [_row(18e-6, rss=100_000_000), _row(18e-6, rss=200_000_000)]
        findings = check_regressions(rows)
        assert [f["metric"] for f in findings] == ["peak_rss_bytes"]


class TestMemoryCeilings:
    """The absolute budget recorded by the worldgen scale bench."""

    def test_rows_without_ceiling_are_ignored(self):
        assert check_memory_ceilings([_row(1.0, rss=10**12)]) == []

    def test_row_under_its_ceiling_passes(self):
        rows = [_row(1.0, rss=100, memory_ceiling_bytes=200)]
        assert check_memory_ceilings(rows) == []

    def test_row_over_its_ceiling_is_flagged_without_history(self):
        # unlike the relative gates, the very first row is already gated
        rows = [_row(1.0, scale=1.0, rss=300, memory_ceiling_bytes=200)]
        findings = check_memory_ceilings(rows)
        assert len(findings) == 1
        f = findings[0]
        assert f["metric"] == "memory_ceiling"
        assert f["scale"] == 1.0
        assert f["latest"] == 300
        assert f["median"] == 200

    def test_every_violating_row_is_reported(self):
        rows = [
            _row(1.0, scale=0.1, rss=300, memory_ceiling_bytes=200),
            _row(1.0, scale=1.0, rss=100, memory_ceiling_bytes=200),
            _row(1.0, scale=1.0, rss=500, memory_ceiling_bytes=200),
        ]
        findings = check_memory_ceilings(rows)
        assert len(findings) == 2
        # sorted worst first
        assert findings[0]["latest"] == 500

    def test_cli_check_enforces_the_ceiling(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        append_history_row(
            path, _row(1.0, scale=1.0, rss=300, memory_ceiling_bytes=200)
        )
        append_history_row(
            path, _row(1.0, scale=1.0, rss=150, memory_ceiling_bytes=200)
        )
        assert main(["--history", str(path), "--check"]) == 1
        assert "memory ceiling" in capsys.readouterr().out


class TestRendering:
    def test_format_history_lists_runs_per_scale(self):
        rows = [_row(1.0, scale=0.002), _row(2.0, scale=0.01)]
        text = format_history(rows)
        assert "scale 0.002" in text
        assert "scale 0.01" in text
        assert "collect_dataset" in text
        assert "abc123" in text

    def test_format_empty_history(self):
        assert "no bench history" in format_history([])


class TestCli:
    def test_check_passes_on_clean_history(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        for wall in (1.0, 1.02, 0.99):
            append_history_row(path, _row(wall))
        assert main(["--history", str(path), "--check"]) == 0
        out = capsys.readouterr().out
        assert "check ok" in out

    def test_check_fails_on_regression(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        for wall in (1.0, 1.0, 5.0):
            append_history_row(path, _row(wall))
        assert main(["--history", str(path), "--check"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSIONS" in out
        assert "collect_dataset" in out

    def test_render_without_check_always_passes(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        append_history_row(path, _row(1.0))
        append_history_row(path, _row(99.0))
        assert main(["--history", str(path)]) == 0
        assert "bench trajectory" in capsys.readouterr().out


def _serving_row(p50: float, scale: float = 0.01, **extra) -> dict:
    return {
        "recorded_at": extra.pop("recorded_at", "2026-08-01T00:00:00+00:00"),
        "git_sha": extra.pop("git_sha", "abc123"),
        "seed": 7,
        "scale": scale,
        "kind": "serving",
        "stages": {"serving.search.p50": {"wall_seconds": p50}},
        **extra,
    }


class TestKindScopedGating:
    def test_kinds_are_gated_independently(self):
        # serving rows interleave with pipeline rows; each kind gates its own
        # latest row against its own trailing median
        rows = [
            _row(1.0),
            _serving_row(0.001),
            _row(1.0),
            _serving_row(0.001),
            _row(1.02),
            _serving_row(0.0011),
        ]
        assert check_regressions(rows) == []

    def test_appending_a_serving_row_keeps_the_pipeline_gated(self):
        rows = [_row(1.0), _row(1.0), _row(1.6), _serving_row(0.001)]
        findings = check_regressions(rows)
        assert [(f["kind"], f["stage"]) for f in findings] == [
            ("pipeline", "collect_dataset")
        ]

    def test_serving_regression_is_flagged_with_its_kind(self):
        rows = [
            _serving_row(0.001),
            _serving_row(0.001),
            _serving_row(0.005),
            _row(1.0),
        ]
        findings = check_regressions(rows)
        assert len(findings) == 1
        assert findings[0]["kind"] == "serving"
        assert findings[0]["stage"] == "serving.search.p50"

    def test_rows_without_kind_are_pipeline(self):
        rows = [_row(1.0), _row(1.0, kind="pipeline"), _row(1.6)]
        findings = check_regressions(rows)
        assert [f["kind"] for f in findings] == ["pipeline"]

    def test_single_row_per_kind_passes(self):
        assert check_regressions([_row(1.0), _serving_row(0.001)]) == []

    def test_format_history_marks_non_pipeline_rows(self):
        text = format_history([_row(1.0), _serving_row(0.001)])
        assert "[serving]" in text
        assert "serving.search.p50" in text
