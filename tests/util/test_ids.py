"""Tests for repro.util.ids."""

import datetime as dt

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.ids import (
    SNOWFLAKE_EPOCH,
    SnowflakeGenerator,
    snowflake_shard,
    snowflake_time,
)

WHEN = dt.datetime(2022, 10, 27, 12, 0, 0)


class TestSnowflakeGenerator:
    def test_ids_are_unique_for_same_timestamp(self):
        gen = SnowflakeGenerator()
        ids = {gen.next_id(WHEN) for _ in range(1000)}
        assert len(ids) == 1000

    def test_ids_sort_chronologically(self):
        gen = SnowflakeGenerator()
        early = gen.next_id(WHEN)
        late = gen.next_id(WHEN + dt.timedelta(seconds=1))
        assert early < late

    def test_out_of_order_requests_allowed(self):
        gen = SnowflakeGenerator()
        late = gen.next_id(WHEN + dt.timedelta(days=3))
        early = gen.next_id(WHEN)
        assert early < late

    def test_timestamp_roundtrip(self):
        gen = SnowflakeGenerator()
        snowflake = gen.next_id(WHEN)
        recovered = snowflake_time(snowflake)
        assert abs((recovered - WHEN).total_seconds()) < 0.001

    def test_shard_roundtrip(self):
        gen = SnowflakeGenerator(shard=513)
        assert snowflake_shard(gen.next_id(WHEN)) == 513

    def test_shard_out_of_range(self):
        with pytest.raises(ValueError):
            SnowflakeGenerator(shard=1024)
        with pytest.raises(ValueError):
            SnowflakeGenerator(shard=-1)

    def test_pre_epoch_timestamp_rejected(self):
        gen = SnowflakeGenerator()
        with pytest.raises(ValueError):
            gen.next_id(SNOWFLAKE_EPOCH - dt.timedelta(seconds=1))

    def test_sequence_exhaustion_raises(self):
        gen = SnowflakeGenerator()
        for _ in range(4096):
            gen.next_id(WHEN)
        with pytest.raises(OverflowError):
            gen.next_id(WHEN)

    def test_negative_snowflake_time_rejected(self):
        with pytest.raises(ValueError):
            snowflake_time(-1)


@given(
    offset_ms=st.integers(min_value=0, max_value=10**7),
    shard=st.integers(min_value=0, max_value=1023),
)
def test_time_and_shard_always_recoverable(offset_ms: int, shard: int):
    """Property: every generated id decodes back to its inputs."""
    when = SNOWFLAKE_EPOCH + dt.timedelta(milliseconds=offset_ms)
    snowflake = SnowflakeGenerator(shard=shard).next_id(when)
    assert snowflake_shard(snowflake) == shard
    assert abs((snowflake_time(snowflake) - when).total_seconds()) < 0.001
