"""The cross-run perf trajectory: render ``BENCH_history.jsonl`` and gate it.

``BENCH_pipeline.json`` is a snapshot of one benchmark session;
``BENCH_history.jsonl`` is the *trajectory*: every benchmark session
appends one summary row (git sha, seed, scale, per-stage wall seconds and
peak memory), so "did PR N regress the pipeline" has an answer that
survives the PR.

Usage::

    python -m repro.obs.bench_report                  # render the trajectory
    python -m repro.obs.bench_report --check          # exit 1 on regression
    python -m repro.obs.bench_report --check --threshold 2.0

A stage **regresses** when the latest row's wall time exceeds
``threshold`` (default 1.25, i.e. >25% slower) times the trailing median
of that stage over the previous rows *at the same scale* (up to
``--window`` of them).  Stages with no same-scale history pass trivially —
the first row of a new scale establishes its baseline.  Memory gates the
same way, against ``peak_rss_bytes`` with its own (looser) threshold.
Wall values where both the latest and the median sit under
``WALL_NOISE_FLOOR_SECONDS`` are never gated: at that magnitude (the
serving rows record warm cached quantiles of a few *microseconds*) the
ratio measures scheduler jitter, not code — a real regression that
pushes a micro-latency past the floor is still caught, because the
floor must clear on *both* sides to skip.

Rows that carry ``memory_ceiling_bytes`` (the worldgen scale bench,
:mod:`repro.simulation.scalebench`) additionally assert an *absolute*
budget: ``--check`` fails when any such row's stage peaks above its own
recorded ceiling, whatever the trailing median says.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

#: default regression thresholds: wall >25% over trailing median fails;
#: peak RSS is noisier across machines, so its default gate is 50%.
WALL_THRESHOLD = 1.25
MEMORY_THRESHOLD = 1.50
#: wall values below this are scheduler jitter, not signal: relative
#: gating only applies once the latest value or the trailing median
#: clears it (sub-100µs warm-cache quantiles swing 2x run to run on an
#: idle box without a single instruction changing).
WALL_NOISE_FLOOR_SECONDS = 1e-4
HISTORY_FILENAME = "BENCH_history.jsonl"


def default_history_path() -> Path:
    """``BENCH_history.jsonl`` at the repository root."""
    return Path(__file__).resolve().parents[3] / HISTORY_FILENAME


def load_history(path: str | Path) -> list[dict]:
    """Rows of the history file, oldest first; missing file -> empty."""
    path = Path(path)
    if not path.exists():
        return []
    rows = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            rows.append(json.loads(line))
    return rows


def append_history_row(path: str | Path, row: dict) -> None:
    """Append one summary row (a JSON object per line, append-only)."""
    with Path(path).open("a") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")


def _trailing(
    rows: list[dict], stage: str, key: str, scale: float, window: int
) -> list[float]:
    values = [
        row["stages"][stage][key]
        for row in rows
        if row.get("scale") == scale
        and stage in row.get("stages", {})
        and row["stages"][stage].get(key) is not None
    ]
    return values[-window:]


def check_regressions(
    rows: list[dict],
    wall_threshold: float = WALL_THRESHOLD,
    memory_threshold: float = MEMORY_THRESHOLD,
    window: int = 8,
) -> list[dict]:
    """Regressions of each kind's latest row against its trailing median.

    Rows carry an optional ``kind`` (default ``"pipeline"``) so independent
    trajectories — the batch pipeline and the serving latency rows — can
    interleave in one history file: the latest row *of each kind* is gated
    against the trailing same-(kind, scale) median, so appending a serving
    row never un-gates the pipeline row (and vice versa).

    Returns one record per offending (stage, metric):
    ``{"kind", "stage", "metric", "latest", "median", "ratio"}``.
    """
    by_kind: dict[str, list[dict]] = {}
    for row in rows:
        by_kind.setdefault(str(row.get("kind", "pipeline")), []).append(row)
    findings = []
    for kind, kind_rows in by_kind.items():
        if len(kind_rows) < 2:
            continue
        latest = kind_rows[-1]
        history = kind_rows[:-1]
        scale = latest.get("scale")
        for metric, threshold in (
            ("wall_seconds", wall_threshold),
            ("peak_rss_bytes", memory_threshold),
        ):
            for stage, fields in latest.get("stages", {}).items():
                value = fields.get(metric)
                if value is None:
                    continue
                trailing = _trailing(history, stage, metric, scale, window)
                if not trailing:
                    continue
                median = statistics.median(trailing)
                if median <= 0:
                    continue
                if (
                    metric == "wall_seconds"
                    and value < WALL_NOISE_FLOOR_SECONDS
                    and median < WALL_NOISE_FLOOR_SECONDS
                ):
                    continue
                ratio = value / median
                if ratio > threshold:
                    findings.append(
                        {
                            "kind": kind,
                            "stage": stage,
                            "metric": metric,
                            "latest": value,
                            "median": median,
                            "ratio": ratio,
                        }
                    )
    findings.sort(key=lambda f: -f["ratio"])
    return findings


def check_memory_ceilings(rows: list[dict]) -> list[dict]:
    """Violations of the absolute per-row memory budget.

    A row recorded with ``memory_ceiling_bytes`` asserts that every one of
    its stages stayed under that peak-RSS budget.  Unlike the relative
    trailing-median gates this is scale-local and history-free: the first
    scale-1.0 row is already gated.
    """
    findings = []
    for row in rows:
        ceiling = row.get("memory_ceiling_bytes")
        if ceiling is None:
            continue
        for stage, fields in row.get("stages", {}).items():
            peak = fields.get("peak_rss_bytes")
            if peak is not None and peak > ceiling:
                findings.append(
                    {
                        "stage": stage,
                        "metric": "memory_ceiling",
                        "scale": row.get("scale"),
                        "latest": peak,
                        "median": ceiling,
                        "ratio": peak / ceiling,
                    }
                )
    findings.sort(key=lambda f: -f["ratio"])
    return findings


def _fmt_bytes(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value / 1_048_576:.0f}MB"


def format_history(rows: list[dict], window: int = 8) -> str:
    """The trajectory, one block per scale, one line per run."""
    if not rows:
        return "(no bench history recorded)"
    lines = ["# bench trajectory"]
    scales = sorted({row.get("scale") for row in rows}, key=lambda s: (s is None, s))
    for scale in scales:
        scoped = [row for row in rows if row.get("scale") == scale]
        lines.append(f"\n## scale {scale} ({len(scoped)} runs)")
        stages = sorted({s for row in scoped for s in row.get("stages", {})})
        for row in scoped[-window:]:
            sha = str(row.get("git_sha", "unknown"))[:10]
            when = str(row.get("recorded_at", ""))[:19]
            kind = str(row.get("kind", "pipeline"))
            suffix = "" if kind == "pipeline" else f"  [{kind}]"
            lines.append(f"{when}  {sha}  seed={row.get('seed')}{suffix}")
            for stage in stages:
                fields = row.get("stages", {}).get(stage)
                if fields is None:
                    continue
                lines.append(
                    f"    {stage:<28} {fields.get('wall_seconds', 0.0):>9.3f}s"
                    f"  rss {_fmt_bytes(fields.get('peak_rss_bytes')):>8}"
                    f"  alloc {_fmt_bytes(fields.get('tracemalloc_peak_bytes')):>8}"
                )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--history", type=str, default=str(default_history_path()),
        help="path to the BENCH_history.jsonl file",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when the latest row regresses past the threshold",
    )
    parser.add_argument(
        "--threshold", type=float, default=WALL_THRESHOLD,
        help="wall-time regression ratio gate (default %(default)s)",
    )
    parser.add_argument(
        "--memory-threshold", type=float, default=MEMORY_THRESHOLD,
        help="peak-RSS regression ratio gate (default %(default)s)",
    )
    parser.add_argument(
        "--window", type=int, default=8,
        help="trailing rows the median is taken over (default %(default)s)",
    )
    args = parser.parse_args(argv)

    rows = load_history(args.history)
    print(format_history(rows, window=args.window))
    if not args.check:
        return 0
    findings = check_regressions(
        rows,
        wall_threshold=args.threshold,
        memory_threshold=args.memory_threshold,
        window=args.window,
    )
    findings += check_memory_ceilings(rows)
    if not findings:
        print(f"\ncheck ok: no stage regressed past {args.threshold:.2f}x "
              f"and every recorded memory ceiling holds (rows: {len(rows)})")
        return 0
    print("\nREGRESSIONS:")
    for f in findings:
        if f["metric"] == "memory_ceiling":
            print(
                f"  {f['stage']} (scale {f['scale']}) memory ceiling: "
                f"{f['latest']}B peak vs {f['median']}B budget "
                f"({f['ratio']:.2f}x)"
            )
            continue
        unit = "s" if f["metric"] == "wall_seconds" else "B"
        print(
            f"  {f['stage']} {f['metric']}: {f['latest']:.3f}{unit} vs trailing "
            f"median {f['median']:.3f}{unit} ({f['ratio']:.2f}x)"
        )
    return 1


if __name__ == "__main__":
    sys.exit(main())
