"""Tests for repro.analysis.switching."""

import pytest

from repro.analysis.switching import switch_matrix, switcher_influence
from repro.collection.dataset import MigrationDataset
from repro.errors import AnalysisError


class TestSwitchMatrix:
    def test_counts(self, tiny_dataset):
        result = switch_matrix(tiny_dataset)
        assert result.matrix == {("mastodon.social", "art.school"): 1}
        assert result.switcher_count == 1

    def test_pct_switched(self, tiny_dataset):
        result = switch_matrix(tiny_dataset)
        assert result.pct_switched == pytest.approx(20.0)

    def test_post_takeover_share(self, tiny_dataset):
        result = switch_matrix(tiny_dataset)
        assert result.pct_post_takeover == 100.0

    def test_top_sources_and_targets(self, tiny_dataset):
        result = switch_matrix(tiny_dataset)
        assert result.top_sources == [("mastodon.social", 1)]
        assert result.top_targets == [("art.school", 1)]

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            switch_matrix(MigrationDataset())


class TestSwitcherInfluence:
    def test_fractions(self, tiny_dataset):
        result = switcher_influence(tiny_dataset)
        # switcher is user 2; migrated followees: 1 (social), 3 (social),
        # 5 (art.school). On first instance: 2/3, on second: 1/3.
        assert result.mean_pct_on_first == pytest.approx(200 / 3)
        assert result.mean_pct_on_second == pytest.approx(100 / 3)

    def test_before_fraction(self, tiny_dataset):
        result = switcher_influence(tiny_dataset)
        # erin joined art.school Nov 1, before the Nov 10 switch -> 100%
        assert result.mean_pct_second_before == pytest.approx(100.0)

    def test_counts_followees_who_switched_to_target(self, tiny_dataset):
        """A followee who reached the instance via their own switch counts."""
        from tests.conftest import make_account
        import datetime as dt

        tiny_dataset.accounts[3] = make_account(
            "carol@mastodon.social",
            dt.date(2022, 10, 20),
            moved_to="carol@art.school",
            moved_on=dt.date(2022, 11, 5),
        )
        result = switcher_influence(tiny_dataset)
        # carol now counts on both first (as origin) and second instance
        assert result.mean_pct_on_second == pytest.approx(200 / 3)

    def test_no_switchers_with_data_rejected(self, tiny_dataset):
        tiny_dataset.followee_sample.pop(2)
        with pytest.raises(AnalysisError):
            switcher_influence(tiny_dataset)


class TestOnSimulatedData:
    def test_switch_rate_in_band(self, small_dataset):
        result = switch_matrix(small_dataset)
        assert 0.0 < result.pct_switched < 15.0

    def test_switches_post_takeover(self, small_dataset):
        result = switch_matrix(small_dataset)
        assert result.pct_post_takeover > 80.0

    def test_social_pull_visible(self, small_dataset):
        """Fig. 10's signature: followees cluster on the second instance."""
        result = switcher_influence(small_dataset)
        assert result.mean_pct_on_second > result.mean_pct_on_first
