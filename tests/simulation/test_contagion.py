"""Tests for repro.simulation.contagion."""

import datetime as dt

import numpy as np
import pytest

from repro.simulation.config import WorldConfig
from repro.simulation.contagion import ContagionModel
from repro.simulation.events import EventTimeline
from repro.simulation.population import SimUser
from repro.twitter.graph import FollowGraph
from repro.util.clock import TAKEOVER_DATE


def agent(uid: int = 1, ideology: float = 0.5) -> SimUser:
    return SimUser(
        user_id=uid, username=f"u{uid}", role="candidate",
        topic_mixture=np.ones(10) / 10, main_topic="tech", ideology=ideology,
        engagement=0.5, tweet_rate=1.0, status_rate=1.0,
        toxicity_twitter=0.0, toxicity_mastodon=0.0, is_lurker=False,
        mirror_rate=0.0, crossposter=None, announce_via="bio",
        announce_style="acct", same_username=True,
        preferred_source="Twitter Web App",
    )


@pytest.fixture
def model():
    config = WorldConfig(seed=1, scale=0.001)
    graph = FollowGraph()
    for followee in (2, 3, 4, 5):
        graph.follow(1, followee)
    return ContagionModel(config, EventTimeline(), graph, np.random.default_rng(1))


class TestFraction:
    def test_no_followees(self, model):
        assert model.migrated_followee_fraction(99, {1, 2}) == 0.0

    def test_counts_migrated(self, model):
        assert model.migrated_followee_fraction(1, {2, 3}) == 0.5
        assert model.migrated_followee_fraction(1, set()) == 0.0
        assert model.migrated_followee_fraction(1, {2, 3, 4, 5}) == 1.0


class TestHazard:
    def test_zero_when_no_intensity(self):
        config = WorldConfig()
        timeline = EventTimeline(shocks=(), baseline=0.0)
        model = ContagionModel(config, timeline, FollowGraph(), np.random.default_rng())
        assert model.hazard_given_fraction(agent(), TAKEOVER_DATE, 0.5) == 0.0

    def test_contagion_raises_hazard(self, model):
        base = model.hazard_given_fraction(agent(), TAKEOVER_DATE, 0.0)
        social = model.hazard_given_fraction(agent(), TAKEOVER_DATE, 0.5)
        assert social > base

    def test_contagion_weight_zero_ablation(self):
        """The ablation: with weight 0, the social term has no effect."""
        config = WorldConfig(contagion_weight=0.0)
        model = ContagionModel(
            config, EventTimeline(), FollowGraph(), np.random.default_rng()
        )
        a = model.hazard_given_fraction(agent(), TAKEOVER_DATE, 0.0)
        b = model.hazard_given_fraction(agent(), TAKEOVER_DATE, 0.9)
        assert a == b

    def test_ideology_raises_hazard(self, model):
        low = model.hazard_given_fraction(agent(ideology=0.1), TAKEOVER_DATE, 0.0)
        high = model.hazard_given_fraction(agent(ideology=0.9), TAKEOVER_DATE, 0.0)
        assert high > low

    def test_pre_takeover_damped(self, model):
        before = model.hazard_given_fraction(
            agent(), TAKEOVER_DATE - dt.timedelta(days=10), 0.0
        )
        after = model.hazard_given_fraction(agent(), TAKEOVER_DATE, 0.0)
        assert before < after

    def test_hazard_capped(self):
        config = WorldConfig(base_daily_hazard=10.0)
        model = ContagionModel(
            config, EventTimeline(), FollowGraph(), np.random.default_rng()
        )
        assert model.hazard_given_fraction(agent(), TAKEOVER_DATE, 1.0) <= 0.95

    def test_hazard_uses_graph_fraction(self, model):
        direct = model.hazard(agent(uid=1), TAKEOVER_DATE, migrated={2, 3})
        expected = model.hazard_given_fraction(agent(uid=1), TAKEOVER_DATE, 0.5)
        assert direct == expected


class TestDecide:
    def test_decide_is_bernoulli(self, model):
        decisions = [
            model.decide(agent(), TAKEOVER_DATE, set()) for _ in range(500)
        ]
        rate = np.mean(decisions)
        assert 0.0 < rate < 0.6  # peak-day hazard, but far from certain
