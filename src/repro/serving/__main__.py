"""Serving CLI: serve a dataset, replay a workload, run the bench.

Usage::

    python -m repro.serving serve   DATASET [--host H] [--port P] [--lazy]
    python -m repro.serving loadgen DATASET [--requests N] [--seed S]
                                    [--mode closed|open] [--workers W]
                                    [--no-caches] [--trace-out PATH]
    python -m repro.serving bench   DATASET [--requests N] [--seed S]
                                    [--out PATH]

``DATASET`` is a path saved by the runner's ``--save`` (``.npz`` or
JSON).  ``serve --lazy`` starts answering header-only endpoints before
the timeline columns are decoded (``.npz`` only).  ``loadgen`` builds
the seed-deterministic trace, replays it in-process and prints the
per-endpoint latency report.  ``bench`` runs the full cold/warm serving
benchmark and prints (or writes) the artifact section.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import obs
from repro.collection.dataset import MigrationDataset
from repro.serving.app import ServingApp
from repro.serving.bench import run_serving_bench
from repro.serving.loadgen import (
    LoadgenConfig,
    build_trace,
    replay_closed,
    replay_open,
    trace_bytes,
)
from repro.serving.server import run as run_server


def _add_dataset_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dataset", type=str, help="dataset path (.npz or JSON)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.serving", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    serve_cmd = commands.add_parser("serve", help="serve a dataset over HTTP")
    _add_dataset_arg(serve_cmd)
    serve_cmd.add_argument("--host", type=str, default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8752)
    serve_cmd.add_argument(
        "--lazy", action="store_true",
        help="lazy-load the .npz corpora; header endpoints answer immediately",
    )
    serve_cmd.add_argument(
        "--no-warm", action="store_true",
        help="skip the read-model warmup (models build on first use)",
    )

    load_cmd = commands.add_parser("loadgen", help="replay a workload in-process")
    _add_dataset_arg(load_cmd)
    load_cmd.add_argument("--requests", type=int, default=2000)
    load_cmd.add_argument("--seed", type=int, default=7)
    load_cmd.add_argument("--mode", choices=("closed", "open"), default="closed")
    load_cmd.add_argument("--workers", type=int, default=1)
    load_cmd.add_argument(
        "--no-caches", action="store_true", help="disable both cache tiers"
    )
    load_cmd.add_argument(
        "--trace-out", type=str, default="",
        help="also write the generated request trace (JSONL) to this path",
    )

    bench_cmd = commands.add_parser("bench", help="run the serving benchmark")
    _add_dataset_arg(bench_cmd)
    bench_cmd.add_argument("--requests", type=int, default=2000)
    bench_cmd.add_argument("--seed", type=int, default=7)
    bench_cmd.add_argument(
        "--out", type=str, default="",
        help="write the serving section (JSON) here instead of stdout",
    )

    args = parser.parse_args(argv)
    obs.configure_logging()

    if args.command == "serve":
        dataset = MigrationDataset.load(args.dataset, lazy=args.lazy)
        app = ServingApp(dataset)
        if not args.no_warm:
            app.warm()
        run_server(app, args.host, args.port)
        return 0

    dataset = MigrationDataset.load(args.dataset)
    config = LoadgenConfig(seed=args.seed, requests=args.requests)

    if args.command == "loadgen":
        trace = build_trace(dataset, config)
        if args.trace_out:
            with open(args.trace_out, "wb") as handle:
                handle.write(trace_bytes(trace))
        app = ServingApp(dataset, caches=not args.no_caches)
        app.warm()
        replay = replay_closed if args.mode == "closed" else replay_open
        report = replay(app, trace, workers=args.workers)
        print(json.dumps(report.to_dict(), indent=2))
        return 0

    # bench
    npz_path = args.dataset if args.dataset.endswith(".npz") else None
    section = run_serving_bench(dataset, config, npz_path=npz_path)
    rendered = json.dumps(section, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
    else:
        print(rendered)
    return 0


if __name__ == "__main__":
    sys.exit(main())
