"""The engine's headline contract: byte-identical at any worker count.

Every combination of backend and worker count must reproduce the *same*
golden sha256 digests recorded in ``tests/data/golden_datasets.json`` —
fault-free and under the ``paper-section-3.2`` scenario — for the seed-7
scale-0.002 world.  The golden protocol runs plain-then-faulted against
one world (the second collection also pins the RNG stream positions
*between* collections), so each combination builds its own world.

If one of these fails while the serial combination passes, the bug is in
the partition/merge or in per-shard state isolation; if all fail together,
the dataset semantics changed and the goldens need a sanctioned re-record
(see ``tests/collection/test_determinism_golden.py``).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.collection.pipeline import CollectionConfig, collect_dataset
from repro.faults import FaultPlan
from repro.parallel import fork_available
from repro.simulation.config import SimConfig
from repro.simulation.world import build_world

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_datasets.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())["0.002"]

SEED = 7
SCALE = 0.002

COMBINATIONS = [
    ("serial", 1),
    ("serial", 2),
    ("serial", 4),
    ("multiprocessing", 1),
    ("multiprocessing", 2),
    ("multiprocessing", 4),
]


def _sha256(dataset) -> str:
    return hashlib.sha256(dataset.to_json().encode()).hexdigest()


@pytest.mark.parametrize("backend,workers", COMBINATIONS)
def test_dataset_bytes_identical_to_serial(backend, workers):
    if backend == "multiprocessing" and not fork_available():
        pytest.skip("fork start method unavailable")
    world = build_world(SimConfig(seed=SEED, scale=SCALE))
    plain = collect_dataset(
        world, CollectionConfig(workers=workers, backend=backend)
    )
    assert _sha256(plain) == GOLDEN["plain_sha256"], (
        f"plain dataset diverged at backend={backend} workers={workers}"
    )
    assert len(plain.matched) == GOLDEN["matched"]
    faulted = collect_dataset(
        world,
        CollectionConfig(
            fault_plan=FaultPlan.scenario("paper-section-3.2", seed=SEED),
            workers=workers,
            backend=backend,
        ),
    )
    assert _sha256(faulted) == GOLDEN["faulted_sha256"], (
        f"faulted dataset diverged at backend={backend} workers={workers}"
    )
