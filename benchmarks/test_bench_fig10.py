"""Benchmark: regenerate Switcher social pull (Figure 10).

Measures the analysis cost of the figure on the shared benchmark dataset
and asserts the paper's qualitative shape holds.
"""

from repro.experiments.registry import get_experiment


def test_bench_fig10(benchmark, bench_dataset):
    result = benchmark(get_experiment("F10"), bench_dataset)
    assert result.notes["mean_pct_on_second"] > result.notes["mean_pct_on_first"]
