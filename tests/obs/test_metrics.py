"""Tests for repro.obs.metrics: counters, gauges, quantile histograms."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry


class TestCounter:
    def test_inc_defaults_to_one(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("requests").inc(-1)

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("req", endpoint="search").inc(5)
        registry.counter("req", endpoint="following").inc(2)
        assert registry.counter("req", endpoint="search").value == 5
        assert registry.counter("req", endpoint="following").value == 2

    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        a = registry.counter("req", endpoint="search")
        b = registry.counter("req", endpoint="search")
        assert a is b

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("req", a="1", b="2")
        b = registry.counter("req", b="2", a="1")
        assert a is b

    def test_counter_total_sums_over_labels(self):
        registry = MetricsRegistry()
        registry.counter("req", endpoint="search").inc(5)
        registry.counter("req", endpoint="following").inc(2)
        registry.counter("other").inc(100)
        assert registry.counter_total("req") == 7

    def test_counters_by_label(self):
        registry = MetricsRegistry()
        registry.counter("req", endpoint="a", domain="x").inc(1)
        registry.counter("req", endpoint="a", domain="y").inc(2)
        registry.counter("req", endpoint="b", domain="x").inc(4)
        assert registry.counters_by_label("req", "endpoint") == {"a": 3, "b": 4}


class TestGauge:
    def test_set_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("coverage")
        gauge.set(91.5)
        assert gauge.value == 91.5
        gauge.set(12.0)
        assert gauge.value == 12.0


class TestHistogram:
    def test_nearest_rank_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sizes")
        for v in range(1, 101):
            hist.observe(v)
        assert hist.quantile(0.50) == 50
        assert hist.quantile(0.90) == 90
        assert hist.quantile(0.99) == 99
        assert hist.quantile(1.0) == 100

    def test_quantile_small_sample(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sizes")
        for v in (7, 3, 11):
            hist.observe(v)
        # nearest rank over sorted [3, 7, 11]
        assert hist.quantile(0.5) == 7
        assert hist.quantile(0.99) == 11
        assert hist.quantile(0.01) == 3

    def test_quantile_validates_range(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sizes")
        hist.observe(1)
        with pytest.raises(ValueError):
            hist.quantile(0.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_empty_summary_is_zeroed(self):
        registry = MetricsRegistry()
        summary = registry.histogram("sizes").summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0

    def test_summary_fields(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sizes")
        for v in (2, 4, 6):
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["total"] == 12
        assert summary["min"] == 2
        assert summary["max"] == 6
        assert summary["mean"] == 4


class TestExport:
    def test_to_dict_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("req", endpoint="search").inc(3)
        registry.gauge("rate").set(97.5)
        registry.histogram("sizes").observe(10)
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        doc = json.loads(json.dumps(registry.to_dict()))
        assert {c["name"] for c in doc["counters"]} == {"req"}
        assert doc["counters"][0]["labels"] == {"endpoint": "search"}
        assert doc["gauges"][0]["value"] == 97.5
        assert doc["histograms"][0]["count"] == 1
        assert doc["spans"][0]["name"] == "outer"
        assert doc["spans"][0]["children"][0]["name"] == "inner"

    def test_is_empty(self):
        registry = MetricsRegistry()
        assert registry.is_empty()
        registry.counter("x").inc()
        assert not registry.is_empty()
