"""Tests for repro.fediverse.directory."""

import datetime as dt

import pytest

from repro.fediverse.directory import InstanceDirectory
from repro.fediverse.models import InstanceInfo
from repro.fediverse.network import FediverseNetwork


def info(domain: str, topic: str = "general") -> InstanceInfo:
    return InstanceInfo(
        domain=domain,
        title=domain,
        topic=topic,
        open_registrations=True,
        created_at=dt.date(2020, 1, 1),
    )


class TestDirectory:
    def test_list_sorted(self):
        directory = InstanceDirectory([info("b.com"), info("a.com")])
        assert [i.domain for i in directory.list_instances()] == ["a.com", "b.com"]

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            InstanceDirectory([info("a.com"), info("a.com")])

    def test_contains_and_get(self):
        directory = InstanceDirectory([info("a.com")])
        assert "a.com" in directory
        assert "A.COM" in directory
        assert directory.get("a.com") is not None
        assert directory.get("z.com") is None

    def test_by_topic(self):
        directory = InstanceDirectory([info("a.com", "tech"), info("b.com", "art")])
        assert [i.domain for i in directory.by_topic("tech")] == ["a.com"]

    def test_len(self):
        assert len(InstanceDirectory([info("a.com")])) == 1

    def test_from_network(self):
        net = FediverseNetwork()
        net.create_instance("x.social", topic="tech")
        net.create_instance("y.social")
        directory = InstanceDirectory.from_network(net)
        assert directory.domains() == ["x.social", "y.social"]
