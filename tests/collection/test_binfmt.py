"""Tests for the binary dataset format (repro.collection.binfmt)."""

import datetime as dt

import pytest

from repro.collection.binfmt import _from_micros, _to_micros
from repro.collection.dataset import MigrationDataset
from tests.conftest import make_status, make_tweet


def fill(ds: MigrationDataset) -> MigrationDataset:
    day = dt.date(2022, 10, 28)
    later = dt.date(2022, 11, 5)
    ds.collected_tweets = [
        make_tweet(1, 1, day, "bye bye twitter #TwitterMigration"),
        make_tweet(2, 3, later, "leaving for good", source="Moa"),
    ]
    ds.twitter_timelines = {
        1: [make_tweet(3, 1, day, "hello #world"),
            make_tweet(4, 1, later, "again", source="Moa")],
        2: [],
        3: [make_tweet(5, 3, later, "unicode: café 🦣 #Fediverse")],
    }
    ds.mastodon_timelines = {
        1: [make_status(6, "alice@mastodon.social", day, "first toot"),
            make_status(7, "alice@mastodon.social", later, "boosting",
                        application="Moa")],
        3: [make_status(8, "carol@mastodon.social", later, "🦣 decentralised")],
    }
    ds.weekly_activity = {
        "mastodon.social": [
            {"week": "2022-W43", "statuses": 5, "logins": 2, "registrations": 1}
        ]
    }
    ds.trends = {"Mastodon": [("2022-10-28", 100)]}
    return ds


class TestMicros:
    def test_round_trip_exact(self):
        moment = dt.datetime(2022, 10, 27, 23, 59, 59, 123456)
        assert _from_micros(_to_micros(moment)) == moment

    def test_pre_epoch(self):
        moment = dt.datetime(1969, 12, 31, 23, 0, 0, 1)
        assert _from_micros(_to_micros(moment)) == moment

    def test_tz_aware_rejected(self):
        aware = dt.datetime(2022, 10, 27, tzinfo=dt.timezone.utc)
        with pytest.raises(ValueError, match="naive"):
            _to_micros(aware)


class TestRoundTrip:
    def test_npz_round_trip_equal(self, tiny_dataset, tmp_path):
        ds = fill(tiny_dataset)
        path = tmp_path / "dataset.npz"
        ds.save(path)
        restored = MigrationDataset.load(path)
        assert restored == ds

    def test_cross_format_equal(self, tiny_dataset, tmp_path):
        ds = fill(tiny_dataset)
        ds.save(tmp_path / "a.json")
        ds.save(tmp_path / "a.npz")
        from_json = MigrationDataset.load(tmp_path / "a.json")
        from_npz = MigrationDataset.load(tmp_path / "a.npz")
        assert from_json == from_npz

    def test_empty_timeline_preserved(self, tiny_dataset, tmp_path):
        ds = fill(tiny_dataset)
        path = tmp_path / "dataset.npz"
        ds.save(path)
        restored = MigrationDataset.load(path)
        assert restored.twitter_timelines[2] == []
        assert list(restored.twitter_timelines) == [1, 2, 3]

    def test_derived_fields_rebuilt(self, tiny_dataset, tmp_path):
        ds = fill(tiny_dataset)
        path = tmp_path / "dataset.npz"
        ds.save(path)
        restored = MigrationDataset.load(path)
        assert restored.twitter_timelines[1][0].hashtags == ["world"]
        assert restored.collected_tweets[0].hashtags == ["TwitterMigration"]

    def test_boost_round_trip(self, tiny_dataset, tmp_path):
        from repro.fediverse.models import Status

        ds = fill(tiny_dataset)
        ds.mastodon_timelines[1].append(
            Status(
                status_id=9,
                account_acct="alice@mastodon.social",
                created_at=dt.datetime(2022, 11, 6, 8, 30),
                text="RT of someone",
                reblog_of_id=1234,
            )
        )
        path = tmp_path / "dataset.npz"
        ds.save(path)
        restored = MigrationDataset.load(path)
        boost = restored.mastodon_timelines[1][-1]
        assert boost.reblog_of_id == 1234
        assert boost.is_boost

    def test_empty_dataset_round_trip(self, tmp_path):
        ds = MigrationDataset()
        path = tmp_path / "empty.npz"
        ds.save(path)
        assert MigrationDataset.load(path) == ds

    def test_format_version_check(self, tiny_dataset, tmp_path):
        import json

        import numpy as np

        ds = fill(tiny_dataset)
        path = tmp_path / "dataset.npz"
        ds.save(path)
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        header = json.loads(bytes(arrays["header"]).decode("utf-8"))
        header["format_version"] = 99
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        bad = tmp_path / "bad.npz"
        with open(bad, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="format"):
            MigrationDataset.load(bad)

    def test_suffix_dispatch(self, tiny_dataset, tmp_path):
        import zipfile

        ds = fill(tiny_dataset)
        npz = tmp_path / "x.npz"
        js = tmp_path / "x.json"
        ds.save(npz)
        ds.save(js)
        assert zipfile.is_zipfile(npz)  # npz files are zip archives
        assert js.read_text().startswith("{")


class TestLazyLoading:
    def test_lazy_defers_the_three_corpora(self, tiny_dataset, tmp_path):
        ds = fill(tiny_dataset)
        path = tmp_path / "dataset.npz"
        ds.save(path)
        lazy = MigrationDataset.load(path, lazy=True)
        assert lazy.lazy_pending == (
            "collected_tweets",
            "mastodon_timelines",
            "twitter_timelines",
        )

    def test_header_fields_available_before_materialising(
        self, tiny_dataset, tmp_path
    ):
        ds = fill(tiny_dataset)
        path = tmp_path / "dataset.npz"
        ds.save(path)
        lazy = MigrationDataset.load(path, lazy=True)
        assert lazy.matched.keys() == ds.matched.keys()
        assert lazy.instance_domains == ds.instance_domains
        assert lazy.trends == ds.trends
        assert len(lazy.lazy_pending) == 3  # nothing forced yet

    def test_fields_materialise_independently_on_access(
        self, tiny_dataset, tmp_path
    ):
        ds = fill(tiny_dataset)
        path = tmp_path / "dataset.npz"
        ds.save(path)
        lazy = MigrationDataset.load(path, lazy=True)
        assert len(lazy.collected_tweets) == len(ds.collected_tweets)
        assert lazy.lazy_pending == ("mastodon_timelines", "twitter_timelines")
        assert list(lazy.twitter_timelines) == list(ds.twitter_timelines)
        assert lazy.lazy_pending == ("mastodon_timelines",)

    def test_lazy_equals_eager_content(self, tiny_dataset, tmp_path):
        ds = fill(tiny_dataset)
        path = tmp_path / "dataset.npz"
        ds.save(path)
        lazy = MigrationDataset.load(path, lazy=True)
        eager = MigrationDataset.load(path)
        # dataclass __eq__ requires identical classes; content compares
        # through the canonical JSON form
        assert lazy.to_json() == eager.to_json()
        assert lazy.lazy_pending == ()

    def test_assignment_cancels_laziness(self, tiny_dataset, tmp_path):
        ds = fill(tiny_dataset)
        path = tmp_path / "dataset.npz"
        ds.save(path)
        lazy = MigrationDataset.load(path, lazy=True)
        lazy.collected_tweets = []
        assert "collected_tweets" not in lazy.lazy_pending
        assert lazy.collected_tweets == []

    def test_lazy_is_a_migration_dataset(self, tiny_dataset, tmp_path):
        ds = fill(tiny_dataset)
        path = tmp_path / "dataset.npz"
        ds.save(path)
        lazy = MigrationDataset.load(path, lazy=True)
        assert isinstance(lazy, MigrationDataset)
        # derived products still work (and force materialisation)
        assert lazy.instance_populations() == ds.instance_populations()

    def test_json_load_ignores_lazy_flag(self, tiny_dataset, tmp_path):
        ds = fill(tiny_dataset)
        path = tmp_path / "dataset.json"
        ds.save(path)
        loaded = MigrationDataset.load(path, lazy=True)
        assert loaded == ds
