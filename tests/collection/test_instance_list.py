"""Tests for repro.collection.instance_list."""

from repro.collection.instance_list import compile_instance_list, normalize_domains
from repro.fediverse.directory import InstanceDirectory
from repro.fediverse.network import FediverseNetwork


class TestNormalizeDomains:
    def test_lowercases_and_strips(self):
        assert normalize_domains(["  Mastodon.Social  "]) == ["mastodon.social"]

    def test_strips_scheme_and_path(self):
        assert normalize_domains(["https://fosstodon.org/about"]) == ["fosstodon.org"]

    def test_deduplicates(self):
        assert normalize_domains(["a.com", "A.COM", "http://a.com"]) == ["a.com"]

    def test_drops_garbage(self):
        assert normalize_domains(["not a domain", "nodots"]) == []

    def test_sorted_output(self):
        assert normalize_domains(["z.org", "a.org"]) == ["a.org", "z.org"]

    def test_trailing_dot_stripped(self):
        assert normalize_domains(["example.com."]) == ["example.com"]


class TestCompile:
    def test_compiles_from_directory(self):
        net = FediverseNetwork()
        net.create_instance("b.social")
        net.create_instance("a.social")
        domains = compile_instance_list(InstanceDirectory.from_network(net))
        assert domains == ["a.social", "b.social"]
