"""Benchmark of the serving layer: cold/warm latency, burst replay, cold start.

Drives :func:`repro.serving.bench.run_serving_bench` against the shared
benchmark dataset: one deterministic Zipf/burst trace replayed against a
cache-free app (cold — the honest compute cost) and twice against a
cached app (warm — result cache + payload LRU hot), plus an open-loop
replay on the trace's burst arrival schedule and a lazy-vs-eager
``.npz`` cold-start measurement.

Gates (the acceptance criteria of the serving PR):

- warm cached p50 must beat cold uncached p50 by ``MIN_WARM_SPEEDUP`` on
  the search and timeline endpoints;
- the warm payload-LRU hit rate must clear ``MIN_HIT_RATE`` (the Zipf
  head is the workload's whole point);
- replay must be error-free — every generated target answers 200.

The measured section lands under ``serving`` in ``BENCH_pipeline.json``
and one ``kind: "serving"`` row (per-endpoint p50/p99 as wall seconds)
is appended to ``BENCH_history.jsonl``, where ``bench_report --check``
gates it against its own trailing median.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, record_serving

from repro.serving.bench import run_serving_bench
from repro.serving.loadgen import LoadgenConfig

#: Warm/cold p50 ratio the caches must deliver on the hot endpoints.
MIN_WARM_SPEEDUP = 5.0
#: Payload-LRU hit-rate floor over the measured (second) warm replay.
MIN_HIT_RATE = 0.5


def test_bench_serving(bench_dataset, tmp_path):
    npz_path = tmp_path / "bench_serving.npz"
    bench_dataset.save(npz_path)

    section = run_serving_bench(
        bench_dataset,
        LoadgenConfig(seed=7, requests=2000),
        npz_path=npz_path,
        scale=BENCH_SCALE,
    )
    record_serving(section)

    assert section["cold"]["errors"] == 0
    assert section["warm"]["errors"] == 0

    for endpoint in ("search", "timeline"):
        speedup = section["speedup_p50"].get(endpoint, 0.0)
        assert speedup >= MIN_WARM_SPEEDUP, (
            f"warm {endpoint} p50 speedup {speedup:.2f}x below the "
            f"{MIN_WARM_SPEEDUP}x gate "
            f"(cold {section['cold']['endpoints'][endpoint]['p50_ms']:.4f}ms "
            f"vs warm {section['warm']['endpoints'][endpoint]['p50_ms']:.4f}ms)"
        )

    hit_rate = section["caches"]["payload"]["hit_rate"]
    assert hit_rate >= MIN_HIT_RATE, (
        f"payload LRU hit rate {hit_rate:.2%} below the {MIN_HIT_RATE:.0%} floor"
    )

    cold_start = section["cold_start"]
    assert cold_start["healthz_ok"]
    # the lazy load must answer its first health check before the eager
    # load even finishes parsing the corpora
    assert cold_start["time_to_first_response_s"] < cold_start["eager_load_s"]
    assert cold_start["lazy_pending_after_healthz"], (
        "healthz forced corpus materialisation; lazy cold start is broken"
    )
