"""RQ3: cross-platform activity over time (Section 6.1, Figure 11).

Migrants keep using both accounts: Mastodon activity grows continuously
after the takeover while Twitter activity does not decrease in parallel.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from functools import cached_property

from repro.collection.dataset import MigrationDataset
from repro.errors import AnalysisError
from repro.frames import AUTO, ordinal_counts, resolve_frames


@dataclass(frozen=True)
class DailyVolumeResult:
    """Figure 11: per-day post counts on each platform."""

    tweets_per_day: list[tuple[_dt.date, int]]
    statuses_per_day: list[tuple[_dt.date, int]]
    total_tweets: int
    total_statuses: int

    @cached_property
    def _tweet_index(self) -> dict[_dt.date, int]:
        return dict(self.tweets_per_day)

    @cached_property
    def _status_index(self) -> dict[_dt.date, int]:
        return dict(self.statuses_per_day)

    def tweets_on(self, day: _dt.date) -> int:
        return self._tweet_index.get(day, 0)

    def statuses_on(self, day: _dt.date) -> int:
        return self._status_index.get(day, 0)


def daily_volume(
    dataset: MigrationDataset, frames=AUTO
) -> DailyVolumeResult:
    """Daily tweet/status volumes over the crawled timelines."""
    if not dataset.twitter_timelines and not dataset.mastodon_timelines:
        raise AnalysisError("no timelines in dataset")
    fr = resolve_frames(dataset, frames)
    if fr is not None:
        return fr.result(("daily_volume",), lambda: _daily_volume_frames(fr))
    tweet_days: dict[_dt.date, int] = {}
    status_days: dict[_dt.date, int] = {}
    total_tweets = 0
    total_statuses = 0
    for tweets in dataset.twitter_timelines.values():
        for tweet in tweets:
            tweet_days[tweet.created_date] = tweet_days.get(tweet.created_date, 0) + 1
            total_tweets += 1
    for statuses in dataset.mastodon_timelines.values():
        for status in statuses:
            status_days[status.created_date] = (
                status_days.get(status.created_date, 0) + 1
            )
            total_statuses += 1
    return DailyVolumeResult(
        tweets_per_day=sorted(tweet_days.items()),
        statuses_per_day=sorted(status_days.items()),
        total_tweets=total_tweets,
        total_statuses=total_statuses,
    )


def _daily_volume_frames(fr) -> DailyVolumeResult:
    tweet_table = fr.tweet_table
    status_table = fr.status_table
    return DailyVolumeResult(
        tweets_per_day=ordinal_counts(tweet_table.day_ordinals),
        statuses_per_day=ordinal_counts(status_table.day_ordinals),
        total_tweets=tweet_table.row_count,
        total_statuses=status_table.row_count,
    )


@dataclass(frozen=True)
class CollectedTweetVolumeResult:
    """Figure 2: daily volume of the migration-tweet corpus itself."""

    per_day: list[tuple[_dt.date, int]]
    total: int
    peak_day: _dt.date


def collected_tweet_volume(
    dataset: MigrationDataset, frames=AUTO
) -> CollectedTweetVolumeResult:
    """The temporal distribution of the §3.1 corpus (Figure 2)."""
    if not dataset.collected_tweets:
        raise AnalysisError("no collected tweets in dataset")
    fr = resolve_frames(dataset, frames)
    if fr is not None:
        per_day = fr.result(
            ("collected_per_day",),
            lambda: ordinal_counts(fr.collected_day_ordinals),
        )
    else:
        days: dict[_dt.date, int] = {}
        for tweet in dataset.collected_tweets:
            days[tweet.created_date] = days.get(tweet.created_date, 0) + 1
        per_day = sorted(days.items())
    peak = max(per_day, key=lambda kv: kv[1])[0]
    return CollectedTweetVolumeResult(
        per_day=per_day, total=len(dataset.collected_tweets), peak_day=peak
    )
