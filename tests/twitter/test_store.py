"""Tests for repro.twitter.store."""

import datetime as dt

import pytest

from repro.twitter.errors import NotFoundError
from repro.twitter.models import Tweet, TwitterUser
from repro.twitter.store import TwitterStore


def user(uid: int, username: str) -> TwitterUser:
    return TwitterUser(
        user_id=uid,
        username=username,
        display_name=username.title(),
        created_at=dt.datetime(2015, 1, 1),
    )


def tweet(tid: int, author: int, text: str = "hello") -> Tweet:
    return Tweet(
        tweet_id=tid,
        author_id=author,
        created_at=dt.datetime(2022, 10, 28, 12, 0),
        text=text,
        source="Twitter Web App",
    )


class TestUsers:
    def test_add_and_get(self):
        store = TwitterStore()
        store.add_user(user(1, "alice"))
        assert store.get_user(1).username == "alice"
        assert store.get_user_by_username("ALICE").user_id == 1

    def test_duplicate_id_rejected(self):
        store = TwitterStore()
        store.add_user(user(1, "alice"))
        with pytest.raises(ValueError):
            store.add_user(user(1, "bob"))

    def test_duplicate_username_rejected_case_insensitive(self):
        store = TwitterStore()
        store.add_user(user(1, "alice"))
        with pytest.raises(ValueError):
            store.add_user(user(2, "Alice"))

    def test_missing_user(self):
        store = TwitterStore()
        with pytest.raises(NotFoundError):
            store.get_user(404)
        with pytest.raises(NotFoundError):
            store.get_user_by_username("ghost")

    def test_counts_and_iteration(self):
        store = TwitterStore()
        store.add_user(user(1, "a"))
        store.add_user(user(2, "b"))
        assert store.user_count == 2
        assert {u.user_id for u in store.users()} == {1, 2}


class TestTweets:
    def test_add_requires_known_author(self):
        store = TwitterStore()
        with pytest.raises(NotFoundError):
            store.add_tweet(tweet(1, author=99))

    def test_duplicate_tweet_id_rejected(self):
        store = TwitterStore()
        store.add_user(user(1, "alice"))
        store.add_tweet(tweet(5, 1))
        with pytest.raises(ValueError):
            store.add_tweet(tweet(5, 1))

    def test_tweets_iterate_in_id_order(self):
        store = TwitterStore()
        store.add_user(user(1, "alice"))
        for tid in (30, 10, 20):
            store.add_tweet(tweet(tid, 1))
        assert [t.tweet_id for t in store.tweets()] == [10, 20, 30]
        assert store.tweet_ids_sorted == [10, 20, 30]

    def test_tweets_by_author_chronological(self):
        store = TwitterStore()
        store.add_user(user(1, "alice"))
        store.add_user(user(2, "bob"))
        store.add_tweet(tweet(3, 1))
        store.add_tweet(tweet(1, 2))
        store.add_tweet(tweet(2, 1))
        assert [t.tweet_id for t in store.tweets_by_author(1)] == [2, 3]

    def test_get_tweet(self):
        store = TwitterStore()
        store.add_user(user(1, "alice"))
        store.add_tweet(tweet(5, 1, "text"))
        assert store.get_tweet(5).text == "text"
        with pytest.raises(NotFoundError):
            store.get_tweet(6)

    def test_extend_tweets(self):
        store = TwitterStore()
        store.add_user(user(1, "alice"))
        store.extend_tweets([tweet(1, 1), tweet(2, 1)])
        assert store.tweet_count == 2
