"""Figure 12: top tweet sources before/after the takeover.

Paper shape: official clients dominate overall, but the two cross-posting
bridges grow most — Mastodon-Twitter Crossposter by 1128.95% and Moa Bridge
by 1732.26%.
"""

from __future__ import annotations

from repro.analysis.sources import top_sources
from repro.collection.dataset import MigrationDataset
from repro.experiments.registry import ExperimentResult

EXP_ID = "F12"
TITLE = "Top 30 tweet sources before/after the takeover"


def run(dataset: MigrationDataset) -> ExperimentResult:
    result = top_sources(dataset, k=30)
    rows = [
        (row.source, row.before, row.after,
         row.growth_pct if row.before else float("nan"))
        for row in result.rows
    ]
    notes = {"pct_users_crossposting": result.pct_users_crossposting}
    for row in result.crossposter_rows:
        notes[f"growth_pct[{row.source}]"] = (
            row.growth_pct if row.before else float("inf")
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["source", "before", "after", "growth %"],
        rows=rows,
        notes=notes,
    )
