"""Tests for repro.collection.followees."""

import datetime as dt

import numpy as np
import pytest

from repro.collection.followees import (
    FolloweeCrawler,
    budgeted_fraction,
    stratified_sample,
)
from repro.fediverse.api import MastodonClient
from repro.fediverse.network import FediverseNetwork
from repro.twitter.api import TwitterAPI
from repro.twitter.graph import FollowGraph
from repro.twitter.models import AccountState, TwitterUser
from repro.twitter.store import TwitterStore
from tests.conftest import make_matched


def matched_population(n: int = 100):
    return [
        make_matched(uid, f"user{uid}", f"user{uid}@m.social", following=uid * 10)
        for uid in range(1, n + 1)
    ]


class TestStratifiedSample:
    def test_size_close_to_fraction(self):
        sample = stratified_sample(matched_population(), 0.10, np.random.default_rng(1))
        assert 8 <= len(sample) <= 12

    def test_half_above_half_below_median(self):
        population = matched_population(200)
        sample = stratified_sample(population, 0.10, np.random.default_rng(1))
        median = float(np.median([u.twitter_following for u in population]))
        above = sum(1 for u in sample if u.twitter_following > median)
        below = len(sample) - above
        assert abs(above - below) <= 2

    def test_empty_population(self):
        assert stratified_sample([], 0.10, np.random.default_rng(1)) == []

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            stratified_sample(matched_population(), 0.0, np.random.default_rng(1))

    def test_full_fraction_returns_everyone(self):
        population = matched_population(20)
        sample = stratified_sample(population, 1.0, np.random.default_rng(1))
        assert len(sample) == 20

    def test_no_duplicates(self):
        sample = stratified_sample(matched_population(), 0.2, np.random.default_rng(2))
        ids = [u.twitter_user_id for u in sample]
        assert len(ids) == len(set(ids))

    def test_deterministic_given_rng(self):
        s1 = stratified_sample(matched_population(), 0.1, np.random.default_rng(5))
        s2 = stratified_sample(matched_population(), 0.1, np.random.default_rng(5))
        assert [u.twitter_user_id for u in s1] == [u.twitter_user_id for u in s2]


class TestBudgetedFraction:
    def test_small_population_not_binding(self):
        api = TwitterAPI(TwitterStore(), FollowGraph())
        assert budgeted_fraction(api, 100) == 0.10

    def test_huge_population_shrinks_fraction(self):
        api = TwitterAPI(TwitterStore(), FollowGraph())
        # budget over 14 days ≈ 20k requests; 10M users -> ~0.002
        fraction = budgeted_fraction(api, 10_000_000)
        assert fraction < 0.10

    def test_zero_users(self):
        api = TwitterAPI(TwitterStore(), FollowGraph())
        assert budgeted_fraction(api, 0) == 0.10


class TestFolloweeCrawler:
    @pytest.fixture
    def services(self):
        store = TwitterStore()
        graph = FollowGraph()
        for uid in (1, 2, 3, 4):
            store.add_user(
                TwitterUser(
                    user_id=uid, username=f"u{uid}", display_name=f"U{uid}",
                    created_at=dt.datetime(2015, 1, 1),
                )
            )
        graph.follow(1, 2)
        graph.follow(1, 3)
        store.get_user(4).state = AccountState.SUSPENDED
        net = FediverseNetwork()
        inst = net.create_instance("m.social")
        inst.register("u1", when=dt.datetime(2022, 10, 28))
        inst.register("u9", when=dt.datetime(2022, 10, 28))
        net.follow("u1@m.social", "u9@m.social", dt.datetime(2022, 10, 29))
        return TwitterAPI(store, graph), MastodonClient(net)

    def test_crawl_records_both_platforms(self, services):
        api, client = services
        crawler = FolloweeCrawler(api, client)
        records = crawler.crawl([make_matched(1, "u1", "u1@m.social")])
        assert records[1].twitter_followees == (2, 3)
        assert records[1].mastodon_following == ("u9@m.social",)

    def test_twitter_failure_drops_user(self, services):
        api, client = services
        crawler = FolloweeCrawler(api, client)
        records = crawler.crawl([make_matched(4, "u4", "u4@m.social")])
        assert records == {}

    def test_mastodon_failure_keeps_twitter_side(self, services):
        api, client = services
        crawler = FolloweeCrawler(api, client)
        records = crawler.crawl([make_matched(1, "u1", "ghost@m.social")])
        assert records[1].twitter_followees == (2, 3)
        assert records[1].mastodon_following == ()

    def test_current_accts_override(self, services):
        api, client = services
        crawler = FolloweeCrawler(api, client)
        records = crawler.crawl(
            [make_matched(1, "u1", "ghost@m.social")],
            current_accts={1: "u1@m.social"},
        )
        assert records[1].mastodon_following == ("u9@m.social",)
