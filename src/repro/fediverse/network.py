"""The federated network: instance registry plus activity routing.

All cross-instance interactions flow through here, following the ActivityPub
subscription semantics the paper's Section 2 explains: a follow across
instances is a ``Follow``/``Accept`` exchange, after which the followee's
instance *pushes* each new status (``Create``) or boost (``Announce``) to
every subscribed instance, where it joins the federated timeline and local
followers' home timelines.
"""

from __future__ import annotations

import datetime as _dt
from collections.abc import Iterator

from repro.fediverse.activitypub import (
    Accept,
    Activity,
    Announce,
    Create,
    Follow,
    Move,
    parse_acct,
)
from repro.fediverse.errors import FederationError, InstanceNotFoundError
from repro.fediverse.instance import MastodonInstance
from repro.fediverse.models import Account, Status


class FediverseNetwork:
    """Registry and router for a set of federated instances."""

    def __init__(self, keep_activity_log: bool = False) -> None:
        self._instances: dict[str, MastodonInstance] = {}
        self._keep_log = keep_activity_log
        self.activity_log: list[Activity] = []

    # -- registry ------------------------------------------------------------

    def create_instance(
        self,
        domain: str,
        title: str = "",
        topic: str = "general",
        created_at: _dt.date = _dt.date(2016, 10, 6),
        open_registrations: bool = True,
        software: str = "mastodon",
    ) -> MastodonInstance:
        """Register a new server; ``software`` picks the implementation.

        Mastodon and Pleroma servers interoperate through the same activity
        exchange — ActivityPub is the compatibility layer (paper, Section 2).
        """
        domain = domain.lower()
        if domain in self._instances:
            raise ValueError(f"instance {domain} already exists")
        if software == "mastodon":
            instance = MastodonInstance(
                domain,
                title=title,
                topic=topic,
                created_at=created_at,
                open_registrations=open_registrations,
            )
        elif software == "pleroma":
            from repro.fediverse.pleroma import PleromaInstance

            instance = PleromaInstance(
                domain,
                title=title,
                topic=topic,
                created_at=created_at,
                open_registrations=open_registrations,
            )
        else:
            raise ValueError(f"unknown fediverse software {software!r}")
        self._instances[domain] = instance
        return instance

    def get_instance(self, domain: str) -> MastodonInstance:
        try:
            return self._instances[domain.lower()]
        except KeyError:
            raise InstanceNotFoundError(f"no instance at {domain}") from None

    def has_instance(self, domain: str) -> bool:
        return domain.lower() in self._instances

    def instances(self) -> Iterator[MastodonInstance]:
        return iter(self._instances.values())

    @property
    def instance_count(self) -> int:
        return len(self._instances)

    def resolve(self, acct: str) -> tuple[MastodonInstance, Account]:
        """Webfinger-style resolution of ``user@domain``."""
        username, domain = parse_acct(acct)
        instance = self.get_instance(domain)
        return instance, instance.get_account(username)

    # -- federation ----------------------------------------------------------

    def follow(self, follower_acct: str, target_acct: str, when: _dt.datetime) -> bool:
        """Make ``follower_acct`` follow ``target_acct``.

        Local follows are recorded directly; cross-instance follows run the
        Follow/Accept exchange.  Returns False when the edge already existed.
        """
        follower_instance, follower = self.resolve(follower_acct)
        target_instance, target = self.resolve(target_acct)
        if target.has_moved:
            raise FederationError(f"{target_acct} has moved to {target.moved_to}")
        # defederation severs the relationship in both directions
        if target_instance.domain in follower_instance.policy.blocked_domains:
            raise FederationError(
                f"{follower_instance.domain} defederated {target_instance.domain}"
            )
        if follower_instance.domain in target_instance.policy.blocked_domains:
            raise FederationError(
                f"{target_instance.domain} defederated {follower_instance.domain}"
            )
        added = follower_instance.record_following(follower.acct, target.acct)
        if not added:
            return False
        if self._keep_log:  # skip the Activity construction too, not just the append
            self._log(Follow(actor=follower.acct, published=when, target=target.acct))
        target_instance.record_follower(target.acct, follower.acct)
        if self._keep_log:
            self._log(Accept(actor=target.acct, published=when, follower=follower.acct))
        return True

    def unfollow(self, follower_acct: str, target_acct: str) -> None:
        follower_instance, follower = self.resolve(follower_acct)
        target_instance, target = self.resolve(target_acct)
        follower_instance.drop_following(follower.acct, target.acct)
        target_instance.drop_follower(target.acct, follower.acct)

    def post_status(
        self,
        acct: str,
        text: str,
        when: _dt.datetime,
        application: str = "Web",
    ) -> Status:
        """Publish a status and push it to every subscribed remote instance."""
        instance, account = self.resolve(acct)
        status = instance.post_status(
            account.username, text, when, application=application
        )
        self._log(Create(actor=account.acct, published=when, status_id=status.status_id))
        self._federate(instance, account.acct, status)
        return status

    def boost(self, acct: str, original: Status, when: _dt.datetime) -> Status:
        """Boost (reblog) an existing status."""
        instance, account = self.resolve(acct)
        boost = instance.post_status(
            account.username,
            text=original.text,
            when=when,
            application="Web",
            reblog_of_id=original.status_id,
        )
        __, origin_domain = parse_acct(original.account_acct)
        self._log(
            Announce(
                actor=account.acct,
                published=when,
                status_id=original.status_id,
                origin_domain=origin_domain,
            )
        )
        self._federate(instance, account.acct, boost)
        return boost

    def record_login(self, acct: str, day: _dt.date) -> None:
        instance, __ = self.resolve(acct)
        instance.record_login(day)

    # -- account migration (instance switching) -------------------------------

    def move_account(
        self, old_acct: str, new_acct: str, when: _dt.datetime
    ) -> Account:
        """Run Mastodon's account migration from ``old_acct`` to ``new_acct``.

        The new account must already exist (Mastodon requires creating it and
        setting an alias first).  The Move activity makes every follower's
        instance transparently re-follow the new account, and the mover's
        followee list is re-imported, mirroring the real migration flow.
        """
        old_instance, old_account = self.resolve(old_acct)
        new_instance, new_account = self.resolve(new_acct)
        if old_account.acct == new_account.acct:
            raise FederationError("cannot move an account onto itself")
        if old_account.has_moved:
            raise FederationError(f"{old_acct} has already moved")
        old_account.moved_to = new_account.acct
        self._log(Move(actor=old_account.acct, published=when, target=new_account.acct))

        # Followers' instances re-follow the new account.
        for follower_acct in old_instance.followers_of(old_account.acct):
            follower_instance, follower = self.resolve(follower_acct)
            follower_instance.drop_following(follower.acct, old_account.acct)
            if follower.acct != new_account.acct:
                follower_instance.record_following(follower.acct, new_account.acct)
                new_instance.record_follower(new_account.acct, follower.acct)
            old_instance.drop_follower(old_account.acct, follower.acct)

        # The mover re-imports their followee list on the new instance.
        for target_acct in old_instance.following_of(old_account.acct):
            if target_acct == new_account.acct:
                continue
            target_instance, target = self.resolve(target_acct)
            new_instance.record_following(new_account.acct, target.acct)
            target_instance.record_follower(target.acct, new_account.acct)
            target_instance.drop_follower(target.acct, old_account.acct)
            old_instance.drop_following(old_account.acct, target.acct)
        return new_account

    def federate_statuses(
        self,
        origin: MastodonInstance,
        author_acct: str,
        statuses: list[Status],
    ) -> None:
        """Push a batch of one author's statuses to every subscriber.

        Equivalent to federating each status as it is posted: deliveries
        are independent per subscriber instance, and each subscriber still
        receives the author's statuses in chronological order — only the
        subscriber lookup is hoisted out of the per-status loop.
        """
        instances = self._instances
        for domain in origin._remote_domains[author_acct]:
            subscriber = instances.get(domain)
            if subscriber is not None:
                subscriber.receive_remote_statuses(author_acct, statuses)

    # -- internals -------------------------------------------------------------

    def _federate(
        self, origin: MastodonInstance, author_acct: str, status: Status
    ) -> None:
        # reads the incremental domain counts directly (one delivery per
        # posted status) instead of copying them into a set per call
        instances = self._instances
        for domain in origin._remote_domains[author_acct]:
            subscriber = instances.get(domain)
            if subscriber is not None:
                subscriber.receive_remote_status(status)

    def _log(self, activity: Activity) -> None:
        if self._keep_log:
            self.activity_log.append(activity)
