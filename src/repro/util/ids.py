"""Snowflake-style identifiers.

Both Twitter and Mastodon hand out 64-bit ids whose high bits encode the
creation time, so ids sort chronologically.  The simulated services use the
same scheme: 41 bits of milliseconds since a custom epoch, 10 bits of shard,
12 bits of sequence.
"""

from __future__ import annotations

import datetime as _dt
from collections import defaultdict

#: Twitter's snowflake epoch (2010-11-04T01:42:54.657Z), reused for both sides.
SNOWFLAKE_EPOCH = _dt.datetime(2010, 11, 4, 1, 42, 54, 657000)

_TIMESTAMP_SHIFT = 22
_SHARD_SHIFT = 12
_SEQUENCE_MASK = (1 << 12) - 1
_SHARD_MASK = (1 << 10) - 1


class SnowflakeGenerator:
    """Generates chronologically sortable 64-bit ids.

    Each service owns one generator per shard; ids generated for the same
    timestamp are disambiguated by a rolling sequence number.
    """

    def __init__(self, shard: int = 0) -> None:
        if not 0 <= shard <= _SHARD_MASK:
            raise ValueError(f"shard must fit in 10 bits, got {shard}")
        self._shard = shard
        self._seq_by_millis: defaultdict[int, int] = defaultdict(int)

    def next_id(self, when: _dt.datetime) -> int:
        """A fresh id whose timestamp component encodes ``when``.

        Unlike a live snowflake service, ids may be requested for arbitrary
        (even out-of-order) timestamps, so the per-millisecond sequence is
        tracked explicitly; a millisecond can host at most 4096 ids.
        """
        delta = when - SNOWFLAKE_EPOCH
        # integer arithmetic: float total_seconds() loses sub-ms precision
        millis = delta.days * 86_400_000 + delta.seconds * 1000 + delta.microseconds // 1000
        if millis < 0:
            raise ValueError(f"timestamp {when} precedes the snowflake epoch")
        seq = self._seq_by_millis[millis]
        if seq > _SEQUENCE_MASK:
            raise OverflowError(f"sequence exhausted for millisecond {millis}")
        self._seq_by_millis[millis] = seq + 1
        return (millis << _TIMESTAMP_SHIFT) | (self._shard << _SHARD_SHIFT) | seq

    def next_ids(self, millis_list: list[int]) -> list[int]:
        """Ids for a batch of precomputed epoch-millisecond timestamps.

        ``millis_list`` holds ``floor((when - SNOWFLAKE_EPOCH) / 1ms)`` per
        id, in ascending order (callers derive it vectorised from the same
        timestamps they pass :meth:`next_id` one at a time — the sequence
        bookkeeping and the resulting ids are identical, call for call).
        """
        if millis_list and millis_list[0] < 0:
            raise ValueError("timestamp precedes the snowflake epoch")
        seqs = self._seq_by_millis
        shard_bits = self._shard << _SHARD_SHIFT
        out: list[int] = []
        append = out.append
        for millis in millis_list:
            seq = seqs[millis]
            if seq > _SEQUENCE_MASK:
                raise OverflowError(f"sequence exhausted for millisecond {millis}")
            seqs[millis] = seq + 1
            append((millis << _TIMESTAMP_SHIFT) | shard_bits | seq)
        return out


def snowflake_time(snowflake: int) -> _dt.datetime:
    """Recover the creation datetime embedded in a snowflake id."""
    if snowflake < 0:
        raise ValueError("snowflake ids are non-negative")
    millis = snowflake >> _TIMESTAMP_SHIFT
    return SNOWFLAKE_EPOCH + _dt.timedelta(milliseconds=millis)


def snowflake_shard(snowflake: int) -> int:
    """Recover the shard component of a snowflake id."""
    return (snowflake >> _SHARD_SHIFT) & _SHARD_MASK
