"""Benchmarks for the world generator itself.

The simulation is the substrate every experiment stands on; these benches
track its cost at a small scale so regressions in the daily loop or the
content materialiser show up.  The plan-mode bench tracks the columnar
engine that the scale bench (``python -m repro.simulation.scalebench``)
runs at paper scale.
"""

import pytest

from repro.simulation.config import SimConfig
from repro.simulation.state import plan_world
from repro.simulation.world import World, build_world


def test_bench_world_build(benchmark):
    world = benchmark.pedantic(
        lambda: build_world(SimConfig(seed=31, scale=0.001)), rounds=3, iterations=1
    )
    assert len(world.migrants) > 20


def test_bench_world_dynamics_only(benchmark):
    """The daily migration/switching loop without content materialisation."""

    def dynamics():
        config = SimConfig(seed=31, scale=0.001)
        world = World(config)
        world._seed_pre_takeover_accounts()
        from repro.util.clock import date_range

        for day in date_range(config.start, config.end):
            world._run_migrations(day)
            world._run_switches(day)
        return world

    world = benchmark.pedantic(dynamics, rounds=3, iterations=1)
    assert world.migrated_ids


def test_bench_world_plan_mode(benchmark):
    """The all-columns plan build at 10x the object-bench scale."""
    plan = benchmark.pedantic(
        lambda: plan_world(SimConfig(seed=31, scale=0.01)), rounds=3, iterations=1
    )
    assert plan.migrants > 200
    assert plan.tweets_planned > plan.migrants
