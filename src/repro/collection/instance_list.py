"""Instance-index compilation (Section 3.1, first step).

The paper seeds everything with a global list of Mastodon instances from
instances.social (15,886 unique domains).  Here the directory service plays
that role; the compiler normalises and deduplicates domains, exactly what a
real pipeline must do with a scraped index.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.fediverse.directory import InstanceDirectory


def compile_instance_list(directory: InstanceDirectory) -> list[str]:
    """The sorted, deduplicated list of known instance domains."""
    return normalize_domains(directory.domains())


def normalize_domains(domains: Iterable[str]) -> list[str]:
    """Lowercase, strip and deduplicate a raw domain list (order: sorted)."""
    cleaned: set[str] = set()
    for domain in domains:
        domain = domain.strip().lower().rstrip(".")
        if domain.startswith("https://"):
            domain = domain[len("https://") :]
        if domain.startswith("http://"):
            domain = domain[len("http://") :]
        domain = domain.split("/")[0]
        if "." in domain and " " not in domain:
            cleaned.add(domain)
    return sorted(cleaned)
