"""Seed-deterministic load generator for the serving API.

Workload model (the read-side counterpart of SONG's parameterized
social-network workloads): a fixed request *mix* over the API endpoints,
Zipf-distributed key popularity (accounts ranked by timeline size,
hashtags by corpus frequency, instances by population — the head of each
ranking absorbs most of the traffic, which is what makes the payload LRU
earn its keep), and an open-loop arrival schedule on the **virtual**
event timeline: the base Poisson rate is multiplied by Gaussian bumps
centred on the takeover / layoffs / ultimatum dates, reproducing the
paper's burst structure as traffic bursts.

Determinism contract (pinned by ``tests/serving/test_loadgen.py``):
``build_trace(dataset, config)`` is a pure function of the dataset and
config — one ``numpy`` generator seeded from ``config.seed``, no wall
clock — so the same inputs give a byte-identical JSONL trace, and
per-endpoint request counts are independent of how many workers later
*replay* the trace (workers only affect concurrency, never content).

Replay offers both standard harness shapes:

- **closed loop**: each worker issues its next request as soon as the
  previous answer returns — measures service latency and max throughput;
- **open loop**: requests fire on the trace's arrival schedule and queue
  for the configured worker pool — measured latency includes queueing
  delay, so bursts show up in p99 exactly as they would at a real
  server under load.
"""

from __future__ import annotations

import datetime as _dt
import heapq
import json
import time
from dataclasses import dataclass, field
from urllib.parse import urlencode

import numpy as np

from repro import obs
from repro.obs.metrics import Histogram
from repro.serving.routes import ENDPOINTS
from repro.twitter.search import MIGRATION_KEYWORDS
from repro.util.clock import (
    LAYOFFS_DATE,
    SIM_END,
    SIM_START,
    TAKEOVER_DATE,
    ULTIMATUM_DATE,
)
from repro.util.distributions import zipf_weights
from repro.util.text import normalize_hashtag


@dataclass(frozen=True)
class LoadgenConfig:
    """One workload: mix, popularity skew, arrival process — all seeded."""

    seed: int = 7
    requests: int = 2000
    #: endpoint mix (weights need not sum to 1; they are normalized)
    mix: tuple[tuple[str, float], ...] = (
        ("search", 0.45),
        ("timeline", 0.35),
        ("instances", 0.10),
        ("instance", 0.05),
        ("trends", 0.05),
    )
    #: search term kind mix (``domain`` is twitter-only and remapped there)
    search_kinds: tuple[tuple[str, float], ...] = (
        ("hashtag", 0.60),
        ("q", 0.25),
        ("domain", 0.15),
    )
    #: share of search/timeline requests aimed at the Mastodon side
    mastodon_share: float = 0.3
    #: Zipf exponents for key popularity
    zipf_accounts: float = 1.2
    zipf_terms: float = 1.1
    zipf_instances: float = 1.3
    #: probability a search/timeline request restricts to a date window
    window_share: float = 0.3
    #: page sizes drawn uniformly from this set
    limit_choices: tuple[int, ...] = (20, 50, 100)
    #: open-loop arrival process: base rate and event-day burst shape
    rate_rps: float = 500.0
    burst_factor: float = 6.0
    burst_width_days: float = 2.0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be positive, got {self.requests}")
        names = [name for name, _ in self.mix]
        unknown = sorted(set(names) - set(ENDPOINTS))
        if unknown:
            raise ValueError(f"unknown endpoints in mix: {unknown}")
        if not 0.0 <= self.mastodon_share <= 1.0:
            raise ValueError("mastodon_share must be in [0, 1]")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "requests": self.requests,
            "mix": {name: weight for name, weight in self.mix},
            "mastodon_share": self.mastodon_share,
            "zipf_accounts": self.zipf_accounts,
            "zipf_terms": self.zipf_terms,
            "rate_rps": self.rate_rps,
            "burst_factor": self.burst_factor,
        }


@dataclass(frozen=True)
class Request:
    """One generated request: arrival offset plus the raw target."""

    seq: int
    arrival_s: float
    endpoint: str
    target: str  # "/path?query"

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "arrival_s": self.arrival_s,
            "endpoint": self.endpoint,
            "target": self.target,
        }


class WorkloadInventory:
    """Key rankings a trace draws from, derived deterministically.

    Every ranking is most-popular-first with a total order (count
    descending, then key ascending), so the Zipf head lands on the same
    keys for every run over the same dataset.
    """

    def __init__(
        self,
        twitter_uids: list[int],
        mastodon_uids: list[int],
        hashtags: list[str],
        status_hashtags: list[str],
        domains: list[str],
        phrases: list[str],
        trend_terms: list[str],
    ) -> None:
        self.twitter_uids = twitter_uids
        self.mastodon_uids = mastodon_uids
        self.hashtags = hashtags
        self.status_hashtags = status_hashtags
        self.domains = domains
        self.phrases = phrases
        self.trend_terms = trend_terms

    @classmethod
    def from_dataset(cls, dataset) -> "WorkloadInventory":
        def ranked_uids(timelines: dict[int, list]) -> list[int]:
            return [
                uid
                for uid, _ in sorted(
                    ((uid, len(posts)) for uid, posts in timelines.items()),
                    key=lambda kv: (-kv[1], kv[0]),
                )
            ]

        def ranked_counts(counts: dict[str, int]) -> list[str]:
            return [
                key
                for key, _ in sorted(
                    counts.items(), key=lambda kv: (-kv[1], kv[0])
                )
            ]

        tag_counts: dict[str, int] = {}
        for tweet in dataset.collected_tweets:
            for tag in tweet.tags_normalized:
                tag_counts[tag] = tag_counts.get(tag, 0) + 1
        status_tag_counts: dict[str, int] = {}
        for statuses in dataset.mastodon_timelines.values():
            for status in statuses:
                for tag in status.hashtags:
                    normalized = normalize_hashtag(tag)
                    status_tag_counts[normalized] = (
                        status_tag_counts.get(normalized, 0) + 1
                    )
        return cls(
            twitter_uids=ranked_uids(dataset.twitter_timelines),
            mastodon_uids=ranked_uids(dataset.mastodon_timelines),
            hashtags=ranked_counts(tag_counts),
            status_hashtags=ranked_counts(status_tag_counts),
            domains=ranked_counts(dataset.instance_populations()),
            phrases=list(MIGRATION_KEYWORDS),
            trend_terms=sorted(dataset.trends),
        )


class _ZipfPicker:
    """Draws ranked-list indices with Zipf(``exponent``) probabilities."""

    def __init__(self, n: int, exponent: float) -> None:
        self.n = n
        self.weights = zipf_weights(n, exponent) if n else None

    def pick(self, rng: np.random.Generator, items: list):
        if not items:
            return None
        return items[int(rng.choice(self.n, p=self.weights))]


def _burst_multiplier(day_offset: float, config: LoadgenConfig) -> float:
    """Arrival-rate multiplier at ``day_offset`` days into the window."""
    bumps = 0.0
    width = config.burst_width_days
    for event in (TAKEOVER_DATE, LAYOFFS_DATE, ULTIMATUM_DATE):
        centre = (event - SIM_START).days
        bumps += float(np.exp(-0.5 * ((day_offset - centre) / width) ** 2))
    return 1.0 + (config.burst_factor - 1.0) * min(bumps, 1.0)


def build_trace(dataset, config: LoadgenConfig) -> list[Request]:
    """The full request trace for one workload — pure in (dataset, config)."""
    inventory = WorkloadInventory.from_dataset(dataset)
    rng = np.random.default_rng(config.seed)

    mix_names = [name for name, _ in config.mix]
    mix_weights = np.asarray([w for _, w in config.mix], dtype=float)
    mix_weights = mix_weights / mix_weights.sum()
    kind_names = [name for name, _ in config.search_kinds]
    kind_weights = np.asarray([w for _, w in config.search_kinds], dtype=float)
    kind_weights = kind_weights / kind_weights.sum()

    pickers = {
        "twitter_uids": _ZipfPicker(len(inventory.twitter_uids), config.zipf_accounts),
        "mastodon_uids": _ZipfPicker(len(inventory.mastodon_uids), config.zipf_accounts),
        "hashtags": _ZipfPicker(len(inventory.hashtags), config.zipf_terms),
        "status_hashtags": _ZipfPicker(
            len(inventory.status_hashtags), config.zipf_terms
        ),
        "domains": _ZipfPicker(len(inventory.domains), config.zipf_instances),
    }
    window_days = (SIM_END - SIM_START).days

    def draw_window() -> tuple[str | None, str | None]:
        if rng.random() >= config.window_share:
            return None, None
        start = int(rng.integers(0, window_days))
        length = int(rng.integers(1, 15))
        since = SIM_START + _dt.timedelta(days=start)
        until = min(SIM_END, since + _dt.timedelta(days=length))
        return since.isoformat(), until.isoformat()

    def draw_limit() -> int:
        return int(config.limit_choices[int(rng.integers(0, len(config.limit_choices)))])

    def search_params() -> tuple[str, dict]:
        platform = "mastodon" if rng.random() < config.mastodon_share else "twitter"
        kind = kind_names[int(rng.choice(len(kind_names), p=kind_weights))]
        if platform == "mastodon" and kind == "domain":
            kind = "hashtag"  # domain search is twitter-only
        if kind == "hashtag":
            pool = "hashtags" if platform == "twitter" else "status_hashtags"
            term = pickers[pool].pick(rng, getattr(inventory, pool))
            if term is None:
                kind, term = "q", inventory.phrases[0]
            params = {kind: term}
        elif kind == "domain":
            term = pickers["domains"].pick(rng, inventory.domains)
            if term is None:
                kind, term = "q", inventory.phrases[0]
            params = {kind: term}
        else:
            term = inventory.phrases[int(rng.integers(0, len(inventory.phrases)))]
            params = {"q": term}
        if platform != "twitter":
            params["platform"] = platform
        since, until = draw_window()
        if since:
            params["since"], params["until"] = since, until
        params["limit"] = draw_limit()
        return "/v1/search", params

    def timeline_params() -> tuple[str, dict]:
        platform = "mastodon" if rng.random() < config.mastodon_share else "twitter"
        pool = "twitter_uids" if platform == "twitter" else "mastodon_uids"
        uid = pickers[pool].pick(rng, getattr(inventory, pool))
        if uid is None:
            platform, uid = "twitter", 0
        params: dict = {}
        if platform != "twitter":
            params["platform"] = platform
        since, until = draw_window()
        if since:
            params["since"], params["until"] = since, until
        params["limit"] = draw_limit()
        return f"/v1/timeline/{uid}", params

    def instances_params() -> tuple[str, dict]:
        params = {"limit": draw_limit()}
        if rng.random() < 0.25:
            params["offset"] = int(rng.integers(1, 50))
        return "/v1/instances", params

    def instance_params() -> tuple[str, dict]:
        domain = pickers["domains"].pick(rng, inventory.domains)
        if domain is None:
            domain = "mastodon.social"
        return f"/v1/instances/{domain}", {}

    def trends_params() -> tuple[str, dict]:
        params: dict = {}
        if inventory.trend_terms and rng.random() < 0.5:
            params["term"] = inventory.trend_terms[
                int(rng.integers(0, len(inventory.trend_terms)))
            ]
        return "/v1/trends", params

    builders = {
        "search": search_params,
        "timeline": timeline_params,
        "instances": instances_params,
        "instance": instance_params,
        "trends": trends_params,
    }

    trace: list[Request] = []
    arrival = 0.0
    for seq in range(config.requests):
        endpoint = mix_names[int(rng.choice(len(mix_names), p=mix_weights))]
        path, params = builders[endpoint]()
        query = urlencode(sorted(params.items()))
        target = f"{path}?{query}" if query else path
        # virtual position in the event window drives the burst multiplier
        day_offset = (seq / config.requests) * window_days
        rate = config.rate_rps * _burst_multiplier(day_offset, config)
        arrival += float(rng.exponential(1.0 / rate))
        trace.append(
            Request(
                seq=seq,
                arrival_s=round(arrival, 9),
                endpoint=endpoint,
                target=target,
            )
        )
    return trace


def trace_bytes(trace: list[Request]) -> bytes:
    """The canonical JSONL encoding of a trace (byte-compared by tests)."""
    lines = [
        json.dumps(r.to_dict(), sort_keys=True, separators=(",", ":"))
        for r in trace
    ]
    return ("\n".join(lines) + "\n").encode("utf-8") if lines else b""


def endpoint_counts(trace: list[Request]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for request in trace:
        counts[request.endpoint] = counts.get(request.endpoint, 0) + 1
    return dict(sorted(counts.items()))


@dataclass
class EndpointReport:
    """Latency/throughput summary for one endpoint of one replay."""

    count: int
    errors: int
    p50_ms: float
    p99_ms: float
    mean_ms: float

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "errors": self.errors,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
        }


@dataclass
class LoadReport:
    """One replay's results: per-endpoint latency plus overall throughput."""

    mode: str
    workers: int
    requests: int
    errors: int
    wall_seconds: float
    throughput_rps: float
    endpoints: dict[str, EndpointReport] = field(default_factory=dict)
    endpoint_requests: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "requests": self.requests,
            "errors": self.errors,
            "wall_seconds": round(self.wall_seconds, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "endpoints": {
                name: report.to_dict()
                for name, report in sorted(self.endpoints.items())
            },
        }


def _summarize(
    mode: str,
    workers: int,
    latencies: dict[str, list[float]],
    errors: dict[str, int],
    counts: dict[str, int],
    wall_seconds: float,
) -> LoadReport:
    endpoints: dict[str, EndpointReport] = {}
    registry = obs.current()
    for name, samples in latencies.items():
        histogram = Histogram(f"serving.loadgen.{name}", {})
        for value in samples:
            histogram.observe(value)
            registry.histogram(
                "serving.loadgen.latency_seconds", endpoint=name, mode=mode
            ).observe(value)
        summary = histogram.summary()
        endpoints[name] = EndpointReport(
            count=counts.get(name, 0),
            errors=errors.get(name, 0),
            p50_ms=round(summary["p50"] * 1e3, 6),
            p99_ms=round(summary["p99"] * 1e3, 6),
            mean_ms=round(summary["mean"] * 1e3, 6),
        )
    total = sum(counts.values())
    return LoadReport(
        mode=mode,
        workers=workers,
        requests=total,
        errors=sum(errors.values()),
        wall_seconds=wall_seconds,
        throughput_rps=total / wall_seconds if wall_seconds > 0 else 0.0,
        endpoints=endpoints,
        endpoint_requests=dict(sorted(counts.items())),
    )


def replay_closed(app, trace: list[Request], workers: int = 1) -> LoadReport:
    """Back-to-back replay: each worker issues its next request on return.

    With a synchronous in-process app the worker count cannot change
    which requests run or what they return — it only partitions the trace
    (round-robin), which the determinism tests exploit.
    """
    latencies: dict[str, list[float]] = {}
    errors: dict[str, int] = {}
    counts: dict[str, int] = {}
    started = time.perf_counter()
    for shard in range(workers):
        for request in trace[shard::workers]:
            t0 = time.perf_counter()
            status, _ = app.get(request.target)
            elapsed = time.perf_counter() - t0
            latencies.setdefault(request.endpoint, []).append(elapsed)
            counts[request.endpoint] = counts.get(request.endpoint, 0) + 1
            if status >= 400:
                errors[request.endpoint] = errors.get(request.endpoint, 0) + 1
    wall = time.perf_counter() - started
    return _summarize("closed", workers, latencies, errors, counts, wall)


def replay_open(app, trace: list[Request], workers: int = 1) -> LoadReport:
    """Arrival-schedule replay against a ``workers``-server queue.

    Service times are measured live; queueing is simulated on the trace's
    virtual arrival clock (no sleeping), so reported latency is
    ``queue wait + service`` — bursts surface as p99 inflation exactly as
    they would at a live server, but the replay itself runs flat out.
    """
    latencies: dict[str, list[float]] = {}
    errors: dict[str, int] = {}
    counts: dict[str, int] = {}
    free_at = [0.0] * max(1, workers)
    heapq.heapify(free_at)
    started = time.perf_counter()
    virtual_end = 0.0
    for request in trace:
        t0 = time.perf_counter()
        status, _ = app.get(request.target)
        service = time.perf_counter() - t0
        server_free = heapq.heappop(free_at)
        begin = max(request.arrival_s, server_free)
        done = begin + service
        heapq.heappush(free_at, done)
        virtual_end = max(virtual_end, done)
        latency = done - request.arrival_s
        latencies.setdefault(request.endpoint, []).append(latency)
        counts[request.endpoint] = counts.get(request.endpoint, 0) + 1
        if status >= 400:
            errors[request.endpoint] = errors.get(request.endpoint, 0) + 1
    wall = time.perf_counter() - started
    report = _summarize("open", workers, latencies, errors, counts, wall)
    # open-loop throughput is on the virtual arrival/queue clock
    if virtual_end > 0:
        report.throughput_rps = round(len(trace) / virtual_end, 3)
    return report
