"""Tests for repro.simulation.trends."""

import datetime as dt

import numpy as np
import pytest

from repro.simulation.events import EventTimeline
from repro.simulation.trends import DEFAULT_TERMS, TrendsService
from repro.util.clock import SIM_END, TAKEOVER_DATE

START = dt.date(2022, 9, 1)


@pytest.fixture
def service():
    return TrendsService(EventTimeline(), np.random.default_rng(5))


class TestTrends:
    def test_supported_terms(self, service):
        assert set(service.supported_terms()) == set(DEFAULT_TERMS)

    def test_unknown_term(self, service):
        with pytest.raises(KeyError):
            service.interest_over_time("Friendster", START, SIM_END)

    def test_normalised_to_100(self, service):
        series = service.interest_over_time("Mastodon", START, SIM_END)
        values = [v for __, v in series]
        assert max(values) == 100
        assert min(values) >= 0

    def test_peak_lands_near_takeover(self, service):
        series = service.interest_over_time("Twitter alternatives", START, SIM_END)
        peak_day = max(series, key=lambda kv: kv[1])[0]
        assert abs((peak_day - TAKEOVER_DATE).days) <= 3

    def test_quiet_before_takeover(self, service):
        series = service.interest_over_time("Twitter alternatives", START, SIM_END)
        september = [v for d, v in series if d < dt.date(2022, 10, 1)]
        assert max(september) < 25

    def test_mastodon_beats_koo_and_hive(self, service):
        """Figure 1b's ordering: Mastodon interest dwarfs the alternatives."""
        timeline = EventTimeline()
        raw_peaks = {}
        for term in ("Mastodon", "Koo", "Hive Social"):
            fresh = TrendsService(timeline, np.random.default_rng(5))
            series = fresh.interest_over_time(term, START, SIM_END)
            raw_peaks[term] = sum(v for __, v in series)
        assert raw_peaks["Mastodon"] >= raw_peaks["Koo"]

    def test_series_covers_every_day(self, service):
        series = service.interest_over_time("Koo", START, SIM_END)
        assert len(series) == (SIM_END - START).days + 1
