"""Ego-network structure of the migration (networkx extension).

RQ2 treats migration as social contagion; this extension examines the
*structure* behind it using the crawled followee sample: the subgraph over
sampled migrants and their followees, migration assortativity (do migrants
follow migrants more than chance?), reciprocity among migrated pairs, and
the co-location graph of instances that share migrating ego networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.collection.dataset import MigrationDataset
from repro.errors import AnalysisError
from repro.frames import AUTO, resolve_frames
from repro.util.stats import percent


@dataclass(frozen=True)
class NetworkStructureResult:
    """Structural statistics of the sampled migration ego networks."""

    nodes: int
    edges: int
    migrated_nodes: int
    #: fraction of sampled edges whose target also migrated
    pct_edges_into_migrants: float
    #: migrated share of the node population (the degree-unweighted
    #: counterpart; popular non-migrating hubs pull the edge share below it)
    pct_expected_at_random: float
    #: edges between two *sampled* users that exist in both directions
    reciprocity_pct: float
    #: instances connected by at least one cross-instance sampled edge
    instance_graph_nodes: int
    instance_graph_edges: int
    #: largest weakly-connected component share (of sampled migrants)
    largest_component_pct: float


def build_sample_graph(dataset: MigrationDataset) -> nx.DiGraph:
    """The directed graph of the §3.3 followee sample.

    Nodes are Twitter user ids; an edge ``u -> v`` means sampled user ``u``
    follows ``v``.  Node attribute ``migrated`` marks matched migrants;
    ``instance`` carries the migrant's (first) instance domain.
    """
    if not dataset.followee_sample:
        raise AnalysisError("no followee sample in dataset")
    graph = nx.DiGraph()
    for uid, record in dataset.followee_sample.items():
        graph.add_node(uid)
        for followee in record.twitter_followees:
            graph.add_edge(uid, followee)
    for node in graph.nodes:
        user = dataset.matched.get(node)
        graph.nodes[node]["migrated"] = user is not None
        graph.nodes[node]["instance"] = (
            user.mastodon_domain if user is not None else None
        )
    return graph


def instance_cooccurrence_graph(dataset: MigrationDataset) -> nx.Graph:
    """Instances linked whenever a sampled edge crosses between them."""
    sample_graph = build_sample_graph(dataset)
    graph = nx.Graph()
    for u, v in sample_graph.edges:
        iu = sample_graph.nodes[u].get("instance")
        iv = sample_graph.nodes[v].get("instance")
        if iu is None or iv is None or iu == iv:
            continue
        if graph.has_edge(iu, iv):
            graph[iu][iv]["weight"] += 1
        else:
            graph.add_edge(iu, iv, weight=1)
    return graph


def network_structure(
    dataset: MigrationDataset, frames=AUTO
) -> NetworkStructureResult:
    """The full structural analysis."""
    fr = resolve_frames(dataset, frames)
    if fr is not None:
        return fr.result(
            ("network_structure",), lambda: _network_structure_frames(fr)
        )
    graph = build_sample_graph(dataset)
    migrated = {n for n, d in graph.nodes(data=True) if d["migrated"]}
    edges_into_migrants = sum(1 for __, v in graph.edges if v in migrated)
    total_edges = graph.number_of_edges()
    if total_edges == 0:
        raise AnalysisError("the sampled graph has no edges")
    baseline = percent(len(migrated), graph.number_of_nodes())

    sampled = set(dataset.followee_sample)
    inner_edges = [(u, v) for u, v in graph.edges if u in sampled and v in sampled]
    reciprocated = sum(1 for u, v in inner_edges if graph.has_edge(v, u))

    instance_graph = instance_cooccurrence_graph(dataset)

    sampled_subgraph = graph.subgraph(
        sampled | {v for u, v in graph.edges if u in sampled and v in migrated}
    )
    if sampled_subgraph.number_of_nodes():
        largest = max(
            (len(c) for c in nx.weakly_connected_components(sampled_subgraph)),
            default=0,
        )
        largest_pct = percent(largest, sampled_subgraph.number_of_nodes())
    else:
        largest_pct = 0.0

    return NetworkStructureResult(
        nodes=graph.number_of_nodes(),
        edges=total_edges,
        migrated_nodes=len(migrated),
        pct_edges_into_migrants=percent(edges_into_migrants, total_edges),
        pct_expected_at_random=baseline,
        reciprocity_pct=percent(reciprocated, len(inner_edges) or 1),
        instance_graph_nodes=instance_graph.number_of_nodes(),
        instance_graph_edges=instance_graph.number_of_edges(),
        largest_component_pct=largest_pct,
    )


def _network_structure_frames(fr) -> NetworkStructureResult:
    """Frames path: the same statistics from flat edge arrays.

    Everything here is integer counting (unique edges, set membership,
    weakly-connected components via union-find), so agreement with the
    networkx path is exact by construction — asserted in ``tests/frames/``.
    """
    dataset = fr.dataset
    if not dataset.followee_sample:
        raise AnalysisError("no followee sample in dataset")
    table = fr.edge_table
    sampled = set(table.sampled_uids)
    if table.sources.size:
        # nx.DiGraph.add_edge dedupes repeated followee entries
        pairs = np.unique(
            np.stack([table.sources, table.targets], axis=1), axis=0
        )
        edge_list = [(int(u), int(v)) for u, v in pairs]
    else:
        edge_list = []
    total_edges = len(edge_list)
    if total_edges == 0:
        raise AnalysisError("the sampled graph has no edges")
    nodes = set(sampled)
    for u, v in edge_list:
        nodes.add(u)
        nodes.add(v)
    matched = dataset.matched
    migrated = {n for n in nodes if n in matched}
    edges_into_migrants = sum(1 for _, v in edge_list if v in migrated)
    baseline = percent(len(migrated), len(nodes))

    edge_set = set(edge_list)
    inner_edges = [
        (u, v) for u, v in edge_list if u in sampled and v in sampled
    ]
    reciprocated = sum(1 for u, v in inner_edges if (v, u) in edge_set)

    instance_nodes: set[str] = set()
    instance_edges: set[tuple[str, str]] = set()
    for u, v in edge_list:
        mu = matched.get(u)
        mv = matched.get(v)
        if mu is None or mv is None:
            continue
        iu, iv = mu.mastodon_domain, mv.mastodon_domain
        if iu == iv:
            continue
        instance_nodes.add(iu)
        instance_nodes.add(iv)
        instance_edges.add((iu, iv) if iu <= iv else (iv, iu))

    sub_nodes = sampled | {
        v for u, v in edge_list if u in sampled and v in migrated
    }
    if sub_nodes:
        parent = {n: n for n in sub_nodes}

        def find(n: int) -> int:
            root = n
            while parent[root] != root:
                root = parent[root]
            while parent[n] != root:
                parent[n], n = root, parent[n]
            return root

        for u, v in edge_list:
            if u in parent and v in parent:
                ru, rv = find(u), find(v)
                if ru != rv:
                    parent[ru] = rv
        sizes: dict[int, int] = {}
        for n in sub_nodes:
            root = find(n)
            sizes[root] = sizes.get(root, 0) + 1
        largest_pct = percent(max(sizes.values(), default=0), len(sub_nodes))
    else:
        largest_pct = 0.0

    return NetworkStructureResult(
        nodes=len(nodes),
        edges=total_edges,
        migrated_nodes=len(migrated),
        pct_edges_into_migrants=percent(edges_into_migrants, total_edges),
        pct_expected_at_random=baseline,
        reciprocity_pct=percent(reciprocated, len(inner_edges) or 1),
        instance_graph_nodes=len(instance_nodes),
        instance_graph_edges=len(instance_edges),
        largest_component_pct=largest_pct,
    )
