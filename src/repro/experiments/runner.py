"""CLI runner: build a world, collect a dataset, regenerate every figure.

Usage::

    repro-experiments [--seed 7] [--scale 0.01] [--only F5,F8] \
                      [--dataset path.json] [--save path.json] [--report]

``--dataset`` loads a previously saved dataset (skipping the simulation);
``--save`` stores the collected dataset for later reuse; ``--report`` also
prints the paper-vs-measured headline table.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.report import format_report, headline_report
from repro.collection.dataset import MigrationDataset
from repro.collection.pipeline import collect_dataset
from repro.experiments.registry import all_experiment_ids, get_experiment
from repro.simulation.world import build_world


def build_dataset(seed: int, scale: float, verbose: bool = True) -> MigrationDataset:
    """Build a world and run the collection pipeline."""
    started = time.time()
    world = build_world(seed=seed, scale=scale)
    if verbose:
        print(
            f"[world] {len(world.migrants)} migrants, "
            f"{world.twitter_store.tweet_count} tweets "
            f"({time.time() - started:.1f}s)",
            file=sys.stderr,
        )
    started = time.time()
    dataset = collect_dataset(world)
    if verbose:
        print(
            f"[collect] {dataset.migrant_count} matched users "
            f"({time.time() - started:.1f}s)",
            file=sys.stderr,
        )
    return dataset


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated experiment ids, e.g. F5,F8")
    parser.add_argument("--dataset", type=str, default="",
                        help="load a saved dataset instead of simulating")
    parser.add_argument("--save", type=str, default="",
                        help="save the collected dataset to this path")
    parser.add_argument("--report", action="store_true",
                        help="also print the paper-vs-measured headline table")
    parser.add_argument("--extensions", action="store_true",
                        help="include the X* extension experiments")
    args = parser.parse_args(argv)

    if args.dataset:
        dataset = MigrationDataset.load(args.dataset)
    else:
        dataset = build_dataset(args.seed, args.scale)
    if args.save:
        dataset.save(args.save)

    ids = [x.strip().upper() for x in args.only.split(",") if x.strip()]
    ids = ids or all_experiment_ids(include_extensions=args.extensions)
    for exp_id in ids:
        result = get_experiment(exp_id)(dataset)
        print(result.format())
        print()
    if args.report:
        print(format_report(headline_report(dataset)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
