"""Every figure experiment runs on the shared dataset and reproduces shape.

These are the repository's core acceptance tests: one test per paper figure
asserting the *qualitative* finding (who wins, direction of effects), since
absolute numbers depend on scale.
"""

import datetime as dt

import pytest

from repro.experiments.registry import all_experiment_ids, get_experiment
from repro.util.clock import TAKEOVER_DATE


@pytest.fixture(scope="module")
def results(small_dataset):
    return {
        exp_id: get_experiment(exp_id)(small_dataset)
        for exp_id in all_experiment_ids()
    }


class TestAllFigures:
    def test_every_experiment_produces_rows(self, results):
        for exp_id, result in results.items():
            assert result.rows, f"{exp_id} produced no rows"
            assert result.exp_id == exp_id
            width = len(result.headers)
            assert all(len(row) == width for row in result.rows), exp_id

    def test_every_experiment_formats(self, results):
        for result in results.values():
            assert result.format()


class TestFigureShapes:
    def test_f1_search_interest_spikes_at_takeover(self, results):
        notes = results["F1"].notes
        takeover_doy = TAKEOVER_DATE.timetuple().tm_yday
        assert abs(notes["peak_doy[Twitter alternatives]"] - takeover_doy) <= 4

    def test_f2_tweet_volume_peaks_after_takeover(self, results):
        notes = results["F2"].notes
        assert notes["post_takeover_share_pct"] > 80.0
        takeover_doy = TAKEOVER_DATE.timetuple().tm_yday
        assert abs(notes["peak_day_of_year"] - takeover_doy) <= 3

    def test_f3_registrations_jump(self, results):
        notes = results["F3"].notes
        assert notes["registrations_growth_x"] > 5.0
        assert notes["statuses_growth_x"] > 1.2

    def test_f4_mastodon_social_leads(self, results):
        rows = results["F4"].rows
        assert rows[0][0] == "mastodon.social"
        totals = [row[3] for row in rows]
        assert totals == sorted(totals, reverse=True)

    def test_f4_some_accounts_predate_takeover(self, results):
        notes = results["F4"].notes
        assert 5.0 < notes["pre_takeover_share_pct"] < 40.0

    def test_f5_concentration(self, results):
        notes = results["F5"].notes
        assert notes["share_top_25pct"] > 60.0

    def test_f6_single_user_instances_exist(self, results):
        notes = results["F6"].notes
        assert notes["single_user_instance_share_pct"] > 0.0

    def test_f7_twitter_networks_larger(self, results):
        notes = results["F7"].notes
        assert notes["tw_median_followers"] > notes["ma_median_followers"]
        assert notes["tw_median_followees"] > notes["ma_median_followees"]

    def test_f8_minority_of_followees_migrate(self, results):
        notes = results["F8"].notes
        assert notes["mean_frac_migrated_pct"] < 30.0
        assert notes["mean_pct_same_instance"] > 0.0

    def test_f9_switching_rare_and_post_takeover(self, results):
        notes = results["F9"].notes
        assert notes["pct_switched"] < 15.0
        assert notes["pct_post_takeover"] > 80.0

    def test_f10_second_instance_pull(self, results):
        notes = results["F10"].notes
        assert notes["mean_pct_on_second"] > notes["mean_pct_on_first"]
        assert notes["mean_pct_second_before"] > 50.0

    def test_f11_both_platforms_active(self, results):
        notes = results["F11"].notes
        assert notes["twitter_retention_ratio"] > 0.6
        assert notes["status_daily_mean_post"] > notes["status_daily_mean_pre"]

    def test_f12_crossposters_grow_most(self, results):
        notes = results["F12"].notes
        growth_keys = [k for k in notes if k.startswith("growth_pct[")]
        assert growth_keys
        assert any(notes[k] > 100.0 for k in growth_keys)

    def test_f13_crossposter_usage_rises_then_falls(self, results):
        notes = results["F13"].notes
        assert notes["mean_peak_window"] > notes["mean_pre_takeover"]
        assert notes["mean_after_shutoff"] < notes["mean_peak_window"]

    def test_f14_content_mostly_different(self, results):
        notes = results["F14"].notes
        assert notes["mean_pct_identical"] < notes["mean_pct_similar"]
        assert notes["pct_users_all_different"] > 50.0

    def test_f15_mastodon_dominated_by_migration_tags(self, results):
        notes = results["F15"].notes
        assert (
            notes["mastodon_migration_tag_share_pct"]
            > notes["twitter_migration_tag_share_pct"]
        )
        assert notes["mastodon_migration_tag_share_pct"] > 15.0

    def test_f16_twitter_more_toxic(self, results):
        notes = results["F16"].notes
        assert notes["pct_tweets_toxic"] > notes["pct_statuses_toxic"]
        assert notes["pct_tweets_toxic"] < 15.0
