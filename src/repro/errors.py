"""Exception hierarchy shared across the reproduction package.

Subsystem-specific errors (for example :class:`repro.twitter.errors.TwitterError`)
derive from :class:`ReproError` so that callers can catch everything raised by
this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The world simulator was driven into an invalid state."""


class CollectionError(ReproError):
    """The data-collection pipeline failed in an unrecoverable way."""


class AnalysisError(ReproError):
    """An analysis was asked to operate on unusable inputs."""
