"""Tests for the worldgen scale bench CLI (plan-mode scaling rows)."""

from __future__ import annotations

import json

from repro.obs.bench_report import check_memory_ceilings, load_history
from repro.simulation import scalebench


def test_run_scale_row_shape():
    row = scalebench.run_scale(seed=11, scale=0.002)
    assert row["scale"] == 0.002
    assert row["agents"] > 0
    assert row["migrants"] > 0
    assert row["tweets_planned"] > row["migrants"]
    assert row["wall_seconds"] > 0
    assert row["peak_rss_bytes"] > 0
    assert row["column_bytes"] > 0


def test_record_pipeline_section_merges_without_clobbering(tmp_path):
    artifact = tmp_path / "BENCH_pipeline.json"
    artifact.write_text(json.dumps({"seed": 7, "stages": []}))
    rows = [{"scale": 0.1, "seed": 7, "wall_seconds": 1.0,
             "peak_rss_bytes": 50, "agents": 10, "migrants": 5,
             "tweets_planned": 100, "statuses_planned": 50,
             "column_bytes": 640}]
    scalebench.record_pipeline_section(rows, ceiling_bytes=100, path=artifact)
    payload = json.loads(artifact.read_text())
    assert payload["seed"] == 7  # pre-existing keys survive
    section = payload["worldgen_scale"]
    assert section["memory_ceiling_bytes"] == 100
    assert section["mode"] == "plan"
    assert section["rows"] == rows


def test_history_rows_carry_the_ceiling_for_the_gate(tmp_path):
    history = tmp_path / "h.jsonl"
    rows = [
        {"scale": 0.1, "seed": 7, "wall_seconds": 1.0, "peak_rss_bytes": 50},
        {"scale": 1.0, "seed": 7, "wall_seconds": 9.0, "peak_rss_bytes": 150},
    ]
    scalebench.record_history_rows(rows, ceiling_bytes=100, path=history)
    recorded = load_history(history)
    assert [r["scale"] for r in recorded] == [0.1, 1.0]
    assert all("worldgen.plan" in r["stages"] for r in recorded)
    # the 1.0 row breached the budget: bench_report --check must flag it
    findings = check_memory_ceilings(recorded)
    assert len(findings) == 1
    assert findings[0]["scale"] == 1.0


def test_cli_no_record_exit_codes(tmp_path, capsys):
    history = tmp_path / "h.jsonl"
    ok = scalebench.main([
        "--scales", "0.002", "--seed", "11", "--no-record",
        "--history", str(history),
    ])
    assert ok == 0
    assert not history.exists()
    breached = scalebench.main([
        "--scales", "0.002", "--seed", "11", "--no-record",
        "--memory-ceiling-mb", "0.001", "--history", str(history),
    ])
    assert breached == 1
    assert "MEMORY CEILING EXCEEDED" in capsys.readouterr().err
