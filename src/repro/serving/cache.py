"""The serving layer's two caches: computed results and rendered payloads.

Both caches follow the frames discipline (DESIGN.md §5): a cache key is
the *normalized* request — two raw requests that normalize identically
must, by construction, produce identical payloads — so a cache can only
ever change *when* bytes are computed, never *which* bytes come back.
``tests/serving/test_cache.py`` pins that contract by diffing every
endpoint's payload with caches enabled against a cache-free app.

Two tiers, mirroring what a request actually costs:

- :class:`ResultCache` memoizes the computed (pre-render) result object
  under its ``(endpoint, params)`` key — unbounded, like the frames
  ``(analysis, params)`` result cache it imitates, because the normalized
  parameter space over a fixed dataset is small;
- :class:`PayloadLru` holds the *rendered JSON bytes* of the hottest keys
  in a bounded LRU — a hit skips both compute and render and returns a
  shared immutable ``bytes`` object.

Hit/miss counts are kept locally (deterministic, always on) and mirrored
to the active :mod:`repro.obs` registry (``serving.result_cache`` /
``serving.payload_cache`` counters with an ``outcome`` label).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro import obs


class CacheStats:
    """Local hit/miss accounting shared by both cache tiers."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction in [0, 1]; 0.0 before the first lookup."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }


class ResultCache:
    """Unbounded ``(endpoint, params) -> result`` memo (frames discipline)."""

    def __init__(self, counter_name: str = "serving.result_cache") -> None:
        self._entries: dict[Any, Any] = {}
        self._counter_name = counter_name
        self.stats = CacheStats()

    def get_or_build(self, key: Any, builder: Callable[[], Any]) -> Any:
        found = self._entries.get(key)
        if found is not None:
            self.stats.hits += 1
            obs.current().counter(self._counter_name, outcome="hit").inc()
            return found
        self.stats.misses += 1
        obs.current().counter(self._counter_name, outcome="miss").inc()
        built = self._entries[key] = builder()
        return built

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def evict_if(self, predicate: Callable[[Any], bool]) -> int:
        """Drop entries whose *key* satisfies ``predicate``; returns count.

        The hot-swap path (:meth:`repro.serving.app.ServingApp.swap_dataset`)
        uses this to invalidate only the entries a dataset delta can reach.
        """
        stale = [key for key in self._entries if predicate(key)]
        for key in stale:
            del self._entries[key]
        return len(stale)


class PayloadLru:
    """Bounded LRU of rendered payload bytes for hot keys."""

    def __init__(
        self, capacity: int, counter_name: str = "serving.payload_cache"
    ) -> None:
        if capacity < 1:
            raise ValueError(f"LRU capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Any, bytes]" = OrderedDict()
        self._counter_name = counter_name
        self.stats = CacheStats()
        self.evictions = 0

    def get(self, key: Any) -> bytes | None:
        found = self._entries.get(key)
        if found is None:
            self.stats.misses += 1
            obs.current().counter(self._counter_name, outcome="miss").inc()
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        obs.current().counter(self._counter_name, outcome="hit").inc()
        return found

    def put(self, key: Any, payload: bytes) -> None:
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            entries[key] = payload
            return
        entries[key] = payload
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def evict_if(self, predicate: Callable[[Any], bool]) -> int:
        """Drop entries whose *key* satisfies ``predicate``; returns count.

        Recency order of the surviving entries is preserved.  Not counted
        in ``evictions`` (which tracks capacity pressure only).
        """
        stale = [key for key in self._entries if predicate(key)]
        for key in stale:
            del self._entries[key]
        return len(stale)
