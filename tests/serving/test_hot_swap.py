"""``ServingApp.swap_dataset``: hot-swap an advanced snapshot in place.

The swap must be transparent: after swapping in the day-N+1 dataset, a
warm app answers every endpoint with exactly the bytes a cold app built
over a from-scratch day-N+1 collection produces — while evicting *only*
the cache entries the delta can reach.  Payload-LRU entries for
unchanged keys survive as the same ``bytes`` objects (no recompute, no
re-render); entries for changed uids are gone before anything re-asks.
"""

from __future__ import annotations

import datetime as dt
import json

import pytest

from repro.collection.pipeline import CollectionConfig
from repro.incremental import advance, collect_with_cursor
from repro.serving.app import ServingApp
from repro.simulation.config import SimConfig
from repro.simulation.world import build_world

SEED = 7
SCALE = 0.002
FROM_CLOCK = dt.date(2022, 11, 24)
TO_CLOCK = dt.date(2022, 11, 25)


@pytest.fixture(scope="module")
def snapshots():
    world = build_world(SimConfig(seed=SEED, scale=SCALE))
    base, cursor = collect_with_cursor(
        world, CollectionConfig(clock=FROM_CLOCK)
    )
    new_ds, _, delta = advance(world, base, cursor, TO_CLOCK)
    cold_ds, _ = collect_with_cursor(world, CollectionConfig(clock=TO_CLOCK))
    return base, new_ds, delta, cold_ds


@pytest.fixture(scope="module")
def uids(snapshots):
    """One changed and one unchanged uid per platform."""
    base, _, delta, _ = snapshots
    return {
        "tw_changed": next(iter(delta.twitter_changed)),
        "tw_same": next(
            u
            for u in base.twitter_timelines
            if u not in delta.twitter_changed
        ),
        "ms_changed": next(iter(delta.mastodon_changed)),
        "ms_same": next(
            u
            for u in base.mastodon_timelines
            if u not in delta.mastodon_changed
        ),
    }


@pytest.fixture(scope="module")
def targets(snapshots, uids):
    base = snapshots[0]
    domain = next(iter(base.weekly_activity))
    return [
        "/healthz",
        "/v1/search?platform=twitter&q=mastodon",
        "/v1/search?platform=mastodon&q=the",
        f"/v1/timeline/{uids['tw_changed']}?platform=twitter",
        f"/v1/timeline/{uids['tw_same']}?platform=twitter",
        f"/v1/timeline/{uids['ms_changed']}?platform=mastodon",
        f"/v1/timeline/{uids['ms_same']}?platform=mastodon",
        "/v1/instances",
        f"/v1/instances/{domain}",
        "/v1/trends",
    ]


@pytest.fixture(scope="module")
def reference(snapshots, targets):
    """Cold app over the from-scratch day-N+1 dataset: the truth bytes."""
    ref = ServingApp(snapshots[3])
    ref.warm()
    return {t: ref.get(t) for t in targets}


@pytest.fixture(scope="module")
def swapped(snapshots, targets):
    """A warm app after a delta swap, plus its pre/post swap observations."""
    base, new_ds, delta, _ = snapshots
    app = ServingApp(base)
    app.warm()
    before = {t: app.get(t) for t in targets}
    lru_before = dict(app.payload_cache._entries)
    outcome = app.swap_dataset(new_ds, delta)
    lru_after = dict(app.payload_cache._entries)
    return app, before, lru_before, lru_after, outcome


def _timeline_keys(entries, uid, platform):
    return [
        key
        for key in entries
        if key[0] == "timeline"
        and dict(key[1]).get("uid") == uid
        and dict(key[1]).get("platform") == platform
    ]


def test_warm_app_serves_everything(swapped):
    _, before, _, _, _ = swapped
    assert all(status == 200 for status, _ in before.values())


def test_delta_swap_reports_surgical_eviction(swapped):
    outcome = swapped[4]
    assert outcome["mode"] == "delta"
    assert outcome["payload_evicted"] > 0
    # at least one read model survived the swap un-rebuilt
    assert any(v in ("kept", "extended") for v in outcome["models"].values())


def test_changed_uids_evicted_before_reuse(swapped, uids):
    _, _, _, lru_after, _ = swapped
    for uid, platform in (
        (uids["tw_changed"], "twitter"),
        (uids["ms_changed"], "mastodon"),
    ):
        assert not _timeline_keys(lru_after, uid, platform), (
            f"stale timeline payload for changed {platform} uid {uid} "
            "survived the swap"
        )


def test_unchanged_uid_payloads_survive_as_same_objects(swapped, uids):
    _, _, lru_before, lru_after, _ = swapped
    for uid, platform in (
        (uids["tw_same"], "twitter"),
        (uids["ms_same"], "mastodon"),
    ):
        keys = _timeline_keys(lru_after, uid, platform)
        assert keys, f"unchanged {platform} uid {uid} was evicted"
        for key in keys:
            assert lru_after[key] is lru_before[key], (
                "unchanged-key payload was re-rendered instead of kept"
            )


def test_swapped_bytes_match_cold_rebuild(swapped, reference, targets):
    app = swapped[0]
    for target in targets:
        assert app.get(target) == reference[target], (
            f"{target} diverged from the from-scratch day-N+1 app"
        )


def test_healthz_reflects_new_snapshot(swapped, reference, snapshots):
    app = swapped[0]
    status, body = app.get("/healthz")
    assert status == 200
    assert json.loads(body) == json.loads(reference["/healthz"][1])
    new_ds = snapshots[1]
    assert json.loads(body)["migrants"] == len(new_ds.matched)


def test_full_swap_without_delta_resets_and_matches(
    snapshots, targets, reference
):
    base, new_ds, _, _ = snapshots
    app = ServingApp(base)
    app.warm()
    for target in targets:
        app.get(target)
    outcome = app.swap_dataset(new_ds)
    assert outcome["mode"] == "full"
    assert len(app.payload_cache) == 0
    for target in targets:
        assert app.get(target) == reference[target]
