"""Tests for repro.collection.handle_matching."""

import datetime as dt

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collection.handle_matching import HandleMatcher, extract_handles
from repro.twitter.models import Tweet, TwitterUser

DOMAINS = frozenset({"mastodon.social", "fosstodon.org", "art.school"})


def user(username: str = "alice", description: str = "", url: str = "",
         location: str = "", display_name: str = "") -> TwitterUser:
    return TwitterUser(
        user_id=1,
        username=username,
        display_name=display_name or username.title(),
        created_at=dt.datetime(2015, 1, 1),
        description=description,
        url=url,
        location=location,
    )


def tweet(text: str, author: int = 1, tid: int = 1) -> Tweet:
    return Tweet(
        tweet_id=tid,
        author_id=author,
        created_at=dt.datetime(2022, 10, 28),
        text=text,
        source="Twitter Web App",
    )


class TestExtractHandles:
    def test_acct_form(self):
        assert extract_handles("find me @alice@mastodon.social !", DOMAINS) == [
            ("alice", "mastodon.social")
        ]

    def test_url_form(self):
        assert extract_handles(
            "profile: https://fosstodon.org/@dev_bob", DOMAINS
        ) == [("dev_bob", "fosstodon.org")]

    def test_unknown_domain_ignored(self):
        assert extract_handles("@alice@not-an-instance.com", DOMAINS) == []

    def test_email_not_matched(self):
        assert extract_handles("mail me at alice@mastodon.social", DOMAINS) == []

    def test_both_forms_deduplicated(self):
        text = "@alice@mastodon.social or https://mastodon.social/@alice"
        assert extract_handles(text, DOMAINS) == [("alice", "mastodon.social")]

    def test_multiple_handles_order_preserved(self):
        text = "@a@mastodon.social then @b@art.school"
        assert extract_handles(text, DOMAINS) == [
            ("a", "mastodon.social"),
            ("b", "art.school"),
        ]

    def test_domain_case_normalised(self):
        assert extract_handles("@alice@MASTODON.SOCIAL", DOMAINS) == [
            ("alice", "mastodon.social")
        ]

    def test_dotted_username(self):
        handles = extract_handles("@a.b@mastodon.social", DOMAINS)
        assert handles == [("a.b", "mastodon.social")]

    @given(st.text(max_size=200))
    def test_never_raises(self, text):
        extract_handles(text, DOMAINS)


class TestMatcher:
    def test_empty_index_rejected(self):
        with pytest.raises(ValueError):
            HandleMatcher(frozenset())

    def test_metadata_match_from_bio(self):
        matcher = HandleMatcher(DOMAINS)
        match = matcher.match_metadata(
            user(description="painter | @zoe@art.school")
        )
        assert match is not None
        assert match.mastodon_acct == "zoe@art.school"
        assert match.matched_via == "metadata"

    def test_metadata_match_from_url_field(self):
        matcher = HandleMatcher(DOMAINS)
        match = matcher.match_metadata(user(url="https://art.school/@zoe"))
        assert match is not None
        assert match.mastodon_username == "zoe"

    def test_metadata_match_from_pinned_tweet(self):
        matcher = HandleMatcher(DOMAINS)
        match = matcher.match_metadata(
            user(), pinned_text="moved to @alice@mastodon.social"
        )
        assert match is not None
        assert match.matched_via == "metadata"

    def test_metadata_match_does_not_require_same_username(self):
        matcher = HandleMatcher(DOMAINS)
        match = matcher.match_metadata(
            user(username="alice", description="@completely_different@art.school")
        )
        assert match is not None
        assert not match.same_username

    def test_tweet_match_requires_identical_username(self):
        matcher = HandleMatcher(DOMAINS)
        me = user(username="alice")
        accepted = matcher.match_tweets(me, [tweet("now at @alice@mastodon.social")])
        assert accepted is not None and accepted.matched_via == "tweet"
        rejected = matcher.match_tweets(me, [tweet("follow @bob@mastodon.social")])
        assert rejected is None

    def test_tweet_match_username_case_insensitive(self):
        matcher = HandleMatcher(DOMAINS)
        match = matcher.match_tweets(
            user(username="Alice"), [tweet("im @alice@mastodon.social")]
        )
        assert match is not None

    def test_hierarchy_prefers_metadata(self):
        matcher = HandleMatcher(DOMAINS)
        me = user(username="alice", description="@alice@art.school")
        match = matcher.match_user(me, [tweet("see @alice@mastodon.social")])
        assert match is not None
        assert match.mastodon_domain == "art.school"
        assert match.matched_via == "metadata"

    def test_no_signal_no_match(self):
        matcher = HandleMatcher(DOMAINS)
        assert matcher.match_user(user(), [tweet("just vibes")]) is None

    def test_match_all(self):
        matcher = HandleMatcher(DOMAINS)
        users = {
            1: user(username="alice", description="@alice@mastodon.social"),
            2: user(username="bob"),
        }
        users[2].user_id = 2
        tweets = {2: [tweet("i am @bob@fosstodon.org now", author=2, tid=9)]}
        matches = matcher.match_all(users, tweets)
        assert set(matches) == {1, 2}
        assert matches[2].mastodon_domain == "fosstodon.org"

    def test_same_username_property(self):
        matcher = HandleMatcher(DOMAINS)
        match = matcher.match_metadata(
            user(username="Alice", description="@alice@mastodon.social")
        )
        assert match is not None and match.same_username


class TestAmbiguousHandles:
    """Deterministic resolution when a user advertises several instances.

    Real bios routinely carry more than one fediverse handle ("main:
    @a@x, art: @a@y").  The matcher must pick one *deterministically* —
    the sharded pipeline re-runs matching on merged shard output, so any
    ambiguity resolved by iteration order would break byte-identity.
    """

    def test_first_handle_in_field_wins(self):
        matcher = HandleMatcher(DOMAINS)
        match = matcher.match_metadata(
            user(description="@zoe@art.school and @zoe@mastodon.social")
        )
        assert match is not None
        assert match.mastodon_domain == "art.school"

    def test_field_scan_order_beats_position_in_profile(self):
        # location is scanned before description (metadata_fields order),
        # so its handle wins even when the description has one too.
        matcher = HandleMatcher(DOMAINS)
        match = matcher.match_metadata(
            user(
                location="@zoe@fosstodon.org",
                description="@zoe@art.school",
            )
        )
        assert match is not None
        assert match.mastodon_domain == "fosstodon.org"

    def test_acct_form_beats_url_form_within_one_field(self):
        # extract_handles scans all acct-form handles before URL-form
        # ones, so the acct form wins even when the URL appears first in
        # the text — pinned here because it is the ambiguity rule the
        # golden digests depend on.
        matcher = HandleMatcher(DOMAINS)
        match = matcher.match_metadata(
            user(description="https://art.school/@zoe plus @zoe@mastodon.social")
        )
        assert match is not None
        assert match.mastodon_domain == "mastodon.social"

    def test_tweet_match_takes_first_owned_handle_across_tweets(self):
        matcher = HandleMatcher(DOMAINS)
        me = user(username="alice")
        tweets = [
            tweet("my friend is @bob@mastodon.social", tid=1),
            tweet("find me at @alice@fosstodon.org", tid=2),
            tweet("alt account @alice@art.school", tid=3),
        ]
        match = matcher.match_tweets(me, tweets)
        assert match is not None
        assert match.mastodon_domain == "fosstodon.org"
        assert match.matched_via == "tweet"

    def test_tweet_with_several_instances_of_own_handle(self):
        matcher = HandleMatcher(DOMAINS)
        me = user(username="alice")
        match = matcher.match_tweets(
            me, [tweet("@alice@art.school / @alice@mastodon.social")]
        )
        assert match is not None
        assert match.mastodon_domain == "art.school"

    def test_metadata_ambiguity_still_beats_unambiguous_tweet(self):
        matcher = HandleMatcher(DOMAINS)
        me = user(
            username="alice",
            description="@alice@art.school @alice@fosstodon.org",
        )
        match = matcher.match_user(me, [tweet("@alice@mastodon.social")])
        assert match is not None
        assert match.matched_via == "metadata"
        assert match.mastodon_domain == "art.school"
