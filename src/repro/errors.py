"""The unified exception hierarchy of the ``repro`` package.

Every error raised by this package derives from :class:`ReproError`, so a
caller can catch everything with a single ``except`` clause.  The subsystem
branches (:class:`TwitterError`, :class:`FediverseError`) live here too and
are re-exported by :mod:`repro.twitter.errors` and
:mod:`repro.fediverse.errors` for compatibility — new code should import
from :mod:`repro.errors` alone.

Two attributes unify the *retry* surface across subsystems:

- :attr:`ReproError.retriable` — whether the failure is transient and a
  resilient caller (see :class:`repro.transport.ClientTransport`) may retry
  the call.  Permanent outcomes — a suspended account, a protected timeline,
  an unknown instance — are ``retriable = False`` and must surface to the
  crawler's coverage accounting instead.
- :attr:`ReproError.retry_after` — when the failing side knows its own
  schedule (a rate-limit window reset, an instance flap with a published
  outage window), the seconds of *virtual* time until the call is worth
  repeating.  ``None`` means "unknown; use backoff".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""

    #: Whether a resilient caller may retry the failed call.
    retriable: bool = False
    #: Virtual seconds until a retry can succeed, when the failure knows.
    retry_after: float | None = None


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The world simulator was driven into an invalid state."""


class CollectionError(ReproError):
    """The data-collection pipeline failed in an unrecoverable way."""


class ResumeError(CollectionError):
    """A resume/advance was refused before touching any data.

    Raised when a crawl cursor or checkpoint does not match the snapshot it
    is asked to extend: format-version or world-stamp mismatch, a config
    digest that differs in a determinism-relevant knob, a clock that does
    not move forward, or an active fault plan on the incremental path.
    Refusing loudly beats silently appending onto the wrong dataset.
    """


class AnalysisError(ReproError):
    """An analysis was asked to operate on unusable inputs."""


# -- transient failures (the fault plane's injectables) ------------------------


class TransientError(ReproError):
    """A failure that a retry can plausibly recover from.

    This is what the fault plane (:mod:`repro.faults`) injects to model the
    timeouts, 5xx responses and truncated payloads a real crawl eats daily.
    """

    retriable = True

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class RequestTimeout(TransientError):
    """The (simulated) request timed out before a response arrived."""


class ServerError(TransientError):
    """The (simulated) server answered with a 5xx-style failure."""


class TruncatedPageError(TransientError):
    """A paginated response arrived incomplete; refetch the page."""


# -- Twitter ------------------------------------------------------------------


class TwitterError(ReproError):
    """Base class for Twitter API errors."""


class NotFoundError(TwitterError):
    """The user or tweet does not exist (deleted/deactivated accounts)."""


class SuspendedAccountError(TwitterError):
    """The account was suspended by the platform."""


class ProtectedAccountError(TwitterError):
    """The account's tweets are protected and invisible to the crawler."""


class RateLimitExceeded(TwitterError):
    """The caller exhausted its request budget for an endpoint window."""

    retriable = True

    def __init__(self, endpoint: str, retry_after: float) -> None:
        super().__init__(
            f"rate limit exceeded for {endpoint}; retry after {retry_after}s"
        )
        self.endpoint = endpoint
        self.retry_after = retry_after


# -- Fediverse ----------------------------------------------------------------


class FediverseError(ReproError):
    """Base class for fediverse errors."""


class InstanceNotFoundError(FediverseError):
    """No instance is registered under the given domain."""


class InstanceDownError(FediverseError):
    """The instance is unreachable (the 11.58% crawl failures of §3.2).

    Unreachability is *presumed transient* — real instances flap under load
    and come back — so the error is retriable; only retry exhaustion makes
    the outage permanent from the crawler's point of view.  When the outage
    has a known end (an injected flap), ``retry_after`` carries the virtual
    seconds until the instance is back.
    """

    retriable = True

    def __init__(self, domain: str, retry_after: float | None = None) -> None:
        super().__init__(f"instance {domain} is down")
        self.domain = domain
        self.retry_after = retry_after


class CircuitOpenError(InstanceDownError):
    """The caller's circuit breaker is open for this domain (fail-fast).

    Subclasses :class:`InstanceDownError` so existing coverage accounting
    treats a tripped breaker exactly like an unreachable instance, but it is
    *not* retriable: the breaker already decided the domain is not worth
    hammering until its recovery window elapses.
    """

    retriable = False

    def __init__(self, domain: str, retry_after: float | None = None) -> None:
        super().__init__(domain, retry_after=retry_after)
        # Overwrite the base message with the breaker-specific one.
        self.args = (f"circuit open for {domain}",)


class AccountNotFoundError(FediverseError):
    """No account with the given username exists on the instance."""


class DuplicateAccountError(FediverseError):
    """The username is already taken on the instance."""


class FederationError(FediverseError):
    """An activity could not be delivered or processed."""


__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "CollectionError",
    "ResumeError",
    "AnalysisError",
    "TransientError",
    "RequestTimeout",
    "ServerError",
    "TruncatedPageError",
    "TwitterError",
    "NotFoundError",
    "SuspendedAccountError",
    "ProtectedAccountError",
    "RateLimitExceeded",
    "FediverseError",
    "InstanceNotFoundError",
    "InstanceDownError",
    "CircuitOpenError",
    "AccountNotFoundError",
    "DuplicateAccountError",
    "FederationError",
]
