"""Crawl cursor: the versioned frontier state of a resumable collection.

A :class:`CrawlCursor` is everything ``collect_dataset`` knows that the
:class:`~repro.collection.dataset.MigrationDataset` does not keep — the
corpus authors' full user objects (re-matching needs them), every user's
per-stage crawl outcome (so an advance knows who gets a delta request and
who is a permanent failure), the followee-crawl attempt set, and the
stamps that make resuming safe: a cursor format version, the world's
seed/scale, a digest over the determinism-relevant config knobs, the
observer-clock high-water mark per stage, and the sha256-derived shard
seed schedule of every sharded stage.

``repro.incremental`` consumes cursors two ways:

- **crash-resume**: ``run_pipeline(checkpoint_path=...)`` writes a cursor
  (plus the partial dataset) after every completed stage; re-running with
  the same path validates the stamps and re-enters the pipeline at the
  first incomplete stage.
- **advance**: a cursor whose stages are all complete, next to its
  snapshot, lets ``advance`` crawl only the delta between the cursor's
  clock and a later one.

Every stamp mismatch raises :class:`repro.errors.ResumeError` before any
data is touched.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ResumeError
from repro.parallel.sharding import derive_seed
from repro.twitter.models import AccountState, TwitterUser
from repro.util.clock import SIM_START

#: Version of the cursor/checkpoint JSON layout itself.
CURSOR_FORMAT_VERSION = 1

#: Sharded stages whose derived-seed schedule the cursor pins.
SHARDED_STAGES = (
    "tweet_search",
    "timelines.twitter",
    "timelines.mastodon",
    "followees",
    "weekly_activity",
)


def dataset_version_for(clock: _dt.date) -> int:
    """The monotonic snapshot version of a clock: days since SIM_START + 1.

    Deriving the version from the clock (instead of counting advances)
    makes an incremental advance and a from-scratch clocked run stamp the
    same bytes.
    """
    return (clock - SIM_START).days + 1


def config_digest(config) -> str:
    """sha256 over the determinism-relevant collection knobs.

    Covers exactly the fields the dataset bytes depend on besides the
    world and the clock: the crawl windows, the followee sampling knobs
    and the shard seed schedule.  Fault plan, retry policy, workers and
    backend are excluded — faults change *outcomes*, not the identity of
    the crawl, and a crashed faulty run is legitimately resumed under a
    repaired (fault-free) transport.
    """
    material = json.dumps(
        {
            "tweet_window": [
                config.tweet_window_start.isoformat(),
                config.tweet_window_end.isoformat(),
            ],
            "timeline_window": [
                config.timeline_window_start.isoformat(),
                config.timeline_window_end.isoformat(),
            ],
            "followee_sample_fraction": config.followee_sample_fraction,
            "sampler_seed": config.sampler_seed,
            "shard_seed": config.shard_seed,
            "shard_count": config.shard_count,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode()).hexdigest()


def shard_seed_digests(config) -> dict[str, list[str]]:
    """Per sharded stage, the sha256-derived seed of every shard slot."""
    base = config.fault_plan.seed
    return {
        stage: [
            format(derive_seed(config.shard_seed, base, stage, index), "016x")
            for index in range(config.shard_count)
        ]
        for stage in SHARDED_STAGES
    }


# -- the frontier state --------------------------------------------------------


@dataclass
class CollectionState:
    """Per-user crawl outcomes the dataset itself does not record."""

    #: every §3.1 corpus author, by Twitter user id (re-matching input)
    users: dict[int, TwitterUser] = field(default_factory=dict)
    #: Twitter timeline outcome per matched uid (``ok``/``suspended``/...)
    twitter_buckets: dict[int, str] = field(default_factory=dict)
    #: Mastodon crawl outcome per matched uid (``ok``/``no_statuses``/...)
    mastodon_buckets: dict[int, str] = field(default_factory=dict)
    #: uids the followee crawler has attempted (successful or not)
    followee_attempted: set[int] = field(default_factory=set)


@dataclass
class CrawlCursor:
    """The resumable frontier of one collection run."""

    world_seed: int
    world_scale: float
    config_digest: str
    clock: _dt.date | None = None
    dataset_version: int | None = None
    completed_stages: list[str] = field(default_factory=list)
    #: per-stage effective window high-water mark (ISO date)
    high_water: dict[str, str] = field(default_factory=dict)
    #: per-stage sha256-derived shard seed schedule
    shard_seeds: dict[str, list[str]] = field(default_factory=dict)
    state: CollectionState = field(default_factory=CollectionState)


# -- (de)serialization ---------------------------------------------------------


def _user_doc(user: TwitterUser) -> dict:
    return {
        "user_id": user.user_id,
        "username": user.username,
        "display_name": user.display_name,
        "created_at": user.created_at.isoformat(),
        "description": user.description,
        "location": user.location,
        "url": user.url,
        "pinned_tweet_id": user.pinned_tweet_id,
        "verified": user.verified,
        "state": user.state.value,
        "followers_count": user.followers_count,
        "following_count": user.following_count,
    }


def _user_from_doc(doc: dict) -> TwitterUser:
    return TwitterUser(
        user_id=int(doc["user_id"]),
        username=doc["username"],
        display_name=doc["display_name"],
        created_at=_dt.datetime.fromisoformat(doc["created_at"]),
        description=doc["description"],
        location=doc["location"],
        url=doc["url"],
        pinned_tweet_id=doc["pinned_tweet_id"],
        verified=doc["verified"],
        state=AccountState(doc["state"]),
        followers_count=int(doc["followers_count"]),
        following_count=int(doc["following_count"]),
    )


def cursor_to_doc(cursor: CrawlCursor) -> dict:
    return {
        "format": CURSOR_FORMAT_VERSION,
        "world": {"seed": cursor.world_seed, "scale": cursor.world_scale},
        "config_digest": cursor.config_digest,
        "clock": cursor.clock.isoformat() if cursor.clock else None,
        "dataset_version": cursor.dataset_version,
        "completed_stages": list(cursor.completed_stages),
        "high_water": dict(cursor.high_water),
        "shard_seeds": {k: list(v) for k, v in cursor.shard_seeds.items()},
        "state": {
            "users": {
                str(uid): _user_doc(u) for uid, u in cursor.state.users.items()
            },
            "twitter_buckets": {
                str(uid): b for uid, b in cursor.state.twitter_buckets.items()
            },
            "mastodon_buckets": {
                str(uid): b for uid, b in cursor.state.mastodon_buckets.items()
            },
            "followee_attempted": sorted(cursor.state.followee_attempted),
        },
    }


def cursor_from_doc(doc: dict) -> CrawlCursor:
    if doc.get("format") != CURSOR_FORMAT_VERSION:
        raise ResumeError(
            f"unsupported cursor format {doc.get('format')!r} "
            f"(this build reads format {CURSOR_FORMAT_VERSION})"
        )
    state_doc = doc["state"]
    state = CollectionState(
        users={
            int(uid): _user_from_doc(d)
            for uid, d in state_doc["users"].items()
        },
        twitter_buckets={
            int(uid): b for uid, b in state_doc["twitter_buckets"].items()
        },
        mastodon_buckets={
            int(uid): b for uid, b in state_doc["mastodon_buckets"].items()
        },
        followee_attempted=set(state_doc["followee_attempted"]),
    )
    return CrawlCursor(
        world_seed=int(doc["world"]["seed"]),
        world_scale=float(doc["world"]["scale"]),
        config_digest=doc["config_digest"],
        clock=_dt.date.fromisoformat(doc["clock"]) if doc["clock"] else None,
        dataset_version=doc["dataset_version"],
        completed_stages=list(doc["completed_stages"]),
        high_water=dict(doc["high_water"]),
        shard_seeds={k: list(v) for k, v in doc["shard_seeds"].items()},
        state=state,
    )


def save_cursor(cursor: CrawlCursor, path: str | Path) -> None:
    """Write the cursor JSON atomically (tmp file + rename)."""
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(cursor_to_doc(cursor), separators=(",", ":")))
    tmp.replace(path)


def load_cursor(path: str | Path) -> CrawlCursor:
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ResumeError(f"cannot read cursor at {path}: {exc}") from exc
    return cursor_from_doc(doc)


# -- validation ----------------------------------------------------------------


def validate_cursor(cursor: CrawlCursor, world, config) -> None:
    """Refuse a cursor that does not belong to this world + config."""
    seed = world.config.seed
    scale = world.config.scale
    if (cursor.world_seed, cursor.world_scale) != (seed, scale):
        raise ResumeError(
            f"cursor was recorded against world seed={cursor.world_seed} "
            f"scale={cursor.world_scale}, not seed={seed} scale={scale}"
        )
    digest = config_digest(config)
    if cursor.config_digest != digest:
        raise ResumeError(
            "cursor config digest mismatch: the crawl windows, sampling or "
            "shard seed schedule differ from the run that wrote the cursor"
        )
    expected = shard_seed_digests(config)
    for stage, seeds in cursor.shard_seeds.items():
        if expected.get(stage) != seeds:
            raise ResumeError(
                f"cursor shard seed schedule for stage {stage!r} does not "
                "match this config"
            )


def validate_for_advance(
    cursor: CrawlCursor, dataset, world, config, new_clock: _dt.date
) -> None:
    """Everything :func:`validate_cursor` checks, plus advance-only rules."""
    validate_cursor(cursor, world, config)
    missing = [s for s in cursor_stage_names() if s not in cursor.completed_stages]
    if missing:
        raise ResumeError(
            f"cursor is mid-run (incomplete stages: {missing}); "
            "finish or crash-resume the collection before advancing"
        )
    if cursor.clock is None:
        raise ResumeError(
            "cursor has no clock: only clocked collections can be advanced"
        )
    if new_clock <= cursor.clock:
        raise ResumeError(
            f"advance clock {new_clock} does not move past the cursor's "
            f"high-water mark {cursor.clock}"
        )
    if dataset.dataset_version != cursor.dataset_version:
        raise ResumeError(
            f"snapshot version {dataset.dataset_version} does not match the "
            f"cursor's {cursor.dataset_version}: refusing to append onto a "
            "mismatched or newer snapshot"
        )
    if config.fault_plan.active:
        raise ResumeError(
            "incremental advance requires a fault-free plan: delta crawls "
            "reuse recorded per-user outcomes, which faults would perturb"
        )


def cursor_stage_names() -> tuple[str, ...]:
    """The pipeline stage names a complete cursor must list."""
    from repro.collection.pipeline import PIPELINE_STAGES

    return PIPELINE_STAGES
