"""Tests for repro.faults: plans, scenarios and the injector."""

import pytest

from repro.errors import (
    ConfigError,
    InstanceDownError,
    RateLimitExceeded,
    TransientError,
    TruncatedPageError,
)
from repro.faults import EndpointFaults, FaultInjector, FaultPlan, scenario_names


class TestEndpointFaults:
    def test_defaults_inactive(self):
        assert not EndpointFaults().active

    def test_any_probability_activates(self):
        assert EndpointFaults(transient_probability=0.1).active
        assert EndpointFaults(truncated_probability=0.1).active
        assert EndpointFaults(rate_limit_probability=0.1).active

    def test_probability_bounds_validated(self):
        with pytest.raises(ConfigError):
            EndpointFaults(transient_probability=1.5).validate()
        with pytest.raises(ConfigError):
            EndpointFaults(truncated_probability=-0.1).validate()

    def test_burst_length_validated(self):
        with pytest.raises(ConfigError):
            EndpointFaults(rate_limit_burst=0).validate()


class TestFaultPlan:
    def test_none_is_inactive(self):
        assert not FaultPlan.none().active

    def test_flap_probability_activates(self):
        assert FaultPlan(flap_probability=0.01).active

    def test_endpoint_faults_activate(self):
        plan = FaultPlan(
            endpoints=(("*", EndpointFaults(transient_probability=0.1)),)
        )
        assert plan.active

    def test_invalid_flap_probability_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(flap_probability=2.0)

    def test_invalid_flap_bounds_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(flap_probability=0.1, flap_min_seconds=0.0)
        with pytest.raises(ConfigError):
            FaultPlan(
                flap_probability=0.1, flap_min_seconds=10.0, flap_max_seconds=5.0
            )

    def test_endpoint_validation_runs_at_construction(self):
        with pytest.raises(ConfigError):
            FaultPlan(endpoints=(("*", EndpointFaults(rate_limit_burst=0)),))

    def test_most_specific_pattern_wins(self):
        exact = EndpointFaults(transient_probability=0.3)
        platform = EndpointFaults(transient_probability=0.2)
        fallback = EndpointFaults(transient_probability=0.1)
        plan = FaultPlan(
            endpoints=(
                ("*", fallback),
                ("twitter.*", platform),
                ("twitter.search", exact),
            )
        )
        assert plan.faults_for("twitter.search") is exact
        assert plan.faults_for("twitter.timeline") is platform
        assert plan.faults_for("mastodon.lookup") is fallback

    def test_no_match_returns_none(self):
        plan = FaultPlan(
            endpoints=(("twitter.*", EndpointFaults(transient_probability=0.1)),)
        )
        assert plan.faults_for("mastodon.lookup") is None


class TestScenarios:
    def test_names_listed(self):
        assert "paper-section-3.2" in scenario_names()
        assert "none" in scenario_names()

    def test_every_named_scenario_constructs(self):
        for name in scenario_names():
            plan = FaultPlan.scenario(name, seed=5)
            assert plan.seed == 5

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigError, match="unknown fault scenario"):
            FaultPlan.scenario("does-not-exist")

    def test_paper_scenario_flaps_are_recoverable(self):
        # Every flap publishes an outage window no longer than the default
        # retry policy's max_delay, so retries can always wait one out —
        # that is what keeps permanent unavailability at the planted level.
        from repro.transport import RetryPolicy

        plan = FaultPlan.scenario("paper-section-3.2")
        assert plan.flap_max_seconds <= RetryPolicy().max_delay


def _drive(plan, endpoint="mastodon.statuses", domain="an.instance", calls=500):
    """Run the injector over a fixed call sequence; return the fault log."""
    injector = FaultInjector(plan)
    log = []
    now = 0.0
    for _ in range(calls):
        try:
            injector.inspect(endpoint, domain, now)
            log.append("ok")
        except InstanceDownError as err:
            log.append(("down", round(err.retry_after or 0.0, 6)))
        except RateLimitExceeded:
            log.append("rate_limit")
        except TruncatedPageError:
            log.append("truncated")
        except TransientError as err:
            log.append(type(err).__name__)
        now += 30.0
    return injector, log


class TestFaultInjector:
    def test_same_seed_same_faults(self):
        plan = FaultPlan.scenario("chaos", seed=42)
        _, log_a = _drive(plan)
        _, log_b = _drive(plan)
        assert log_a == log_b
        assert any(entry != "ok" for entry in log_a)

    def test_different_seed_different_faults(self):
        _, log_a = _drive(FaultPlan.scenario("chaos", seed=1))
        _, log_b = _drive(FaultPlan.scenario("chaos", seed=2))
        assert log_a != log_b

    def test_none_plan_never_injects(self):
        injector, log = _drive(FaultPlan.none())
        assert log == ["ok"] * len(log)
        assert injector.injected_total == 0

    def test_flap_downs_domain_until_expiry(self):
        plan = FaultPlan(seed=3, flap_probability=1.0, flap_min_seconds=100.0,
                         flap_max_seconds=100.0)
        injector = FaultInjector(plan)
        with pytest.raises(InstanceDownError) as exc:
            injector.inspect("mastodon.lookup", "flappy.io", 0.0)
        assert exc.value.retry_after == pytest.approx(100.0)
        assert injector.flapping("flappy.io", 50.0)
        # Mid-flap: still down, retry_after shrinks to the remaining window.
        with pytest.raises(InstanceDownError) as exc:
            injector.inspect("mastodon.lookup", "flappy.io", 60.0)
        assert exc.value.retry_after == pytest.approx(40.0)
        assert not injector.flapping("flappy.io", 150.0)

    def test_flaps_do_not_apply_without_domain(self):
        plan = FaultPlan(seed=3, flap_probability=1.0)
        injector = FaultInjector(plan)
        injector.inspect("twitter.search", None, 0.0)  # must not raise

    def test_rate_limit_burst_runs_its_course(self):
        plan = FaultPlan(
            seed=0,
            endpoints=(
                ("twitter.search", EndpointFaults(
                    rate_limit_probability=1.0,
                    rate_limit_burst=3,
                    rate_limit_retry_after=45.0,
                )),
            ),
        )
        injector = FaultInjector(plan)
        for _ in range(3):
            with pytest.raises(RateLimitExceeded) as exc:
                injector.inspect("twitter.search", None, 0.0)
            assert exc.value.retry_after == 45.0
        # The burst is spent; the next trigger draws a fresh burst, so the
        # streak length is exactly the configured one per draw.
        assert injector._burst_remaining["twitter.search"] == 0

    def test_injected_total_counts_every_fault(self):
        plan = FaultPlan.scenario("chaos", seed=42)
        injector, log = _drive(plan)
        assert injector.injected_total == sum(
            1 for entry in log if entry != "ok"
        )
