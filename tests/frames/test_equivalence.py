"""Frames-vs-naive equivalence: the tentpole's central contract.

Every experiment must render *byte-identical* output whether it runs on
the memoized columnar frames (:mod:`repro.frames`) or on the original
per-object loops.  The naive path stays reachable two ways — the global
``frames_disabled()`` switch and the per-call ``frames=None`` escape
hatch — and both are pinned here against the frames output on the shared
simulated dataset.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_report, headline_report
from repro.experiments.registry import all_experiment_ids, get_experiment
from repro.frames import frames_disabled, frames_of, invalidate

ALL_IDS = all_experiment_ids(include_extensions=True)


@pytest.fixture(scope="module")
def frames_outputs(small_dataset) -> dict[str, str]:
    """Every figure's format() string computed on the frames path."""
    invalidate(small_dataset)
    outputs = {
        exp_id: get_experiment(exp_id)(small_dataset).format()
        for exp_id in ALL_IDS
    }
    outputs["report"] = format_report(headline_report(small_dataset))
    return outputs


@pytest.fixture(scope="module")
def naive_outputs(small_dataset) -> dict[str, str]:
    """The same outputs with frames globally disabled."""
    with frames_disabled():
        outputs = {
            exp_id: get_experiment(exp_id)(small_dataset).format()
            for exp_id in ALL_IDS
        }
        outputs["report"] = format_report(headline_report(small_dataset))
    return outputs


@pytest.mark.parametrize("exp_id", ALL_IDS)
def test_experiment_identical(exp_id, frames_outputs, naive_outputs):
    assert frames_outputs[exp_id] == naive_outputs[exp_id]


def test_report_identical(frames_outputs, naive_outputs):
    assert frames_outputs["report"] == naive_outputs["report"]


def test_frames_none_escape_hatch(small_dataset, frames_outputs):
    """``frames=None`` forces the naive loops even with frames enabled."""
    from repro.analysis.activity import daily_volume
    from repro.analysis.hashtags import top_hashtags
    from repro.analysis.sources import top_sources
    from repro.analysis.toxicity import toxicity_analysis

    assert daily_volume(small_dataset, frames=None) == daily_volume(small_dataset)
    assert top_hashtags(small_dataset, frames=None) == top_hashtags(small_dataset)
    assert top_sources(small_dataset, frames=None) == top_sources(small_dataset)
    naive_tox = toxicity_analysis(small_dataset, frames=None)
    framed_tox = toxicity_analysis(small_dataset)
    assert naive_tox.pct_tweets_toxic == framed_tox.pct_tweets_toxic
    assert naive_tox.pct_statuses_toxic == framed_tox.pct_statuses_toxic
    assert (
        naive_tox.twitter_toxic_fraction.xs.tolist()
        == framed_tox.twitter_toxic_fraction.xs.tolist()
    )


def test_frames_are_memoized(small_dataset):
    assert frames_of(small_dataset) is frames_of(small_dataset)


def test_invalidate_drops_cached_frames(small_dataset):
    before = frames_of(small_dataset)
    invalidate(small_dataset)
    after = frames_of(small_dataset)
    assert after is not before
    # rebuilt frames still agree with the old instance's products
    assert after.instance_populations == before.instance_populations


def test_custom_scorer_bypasses_frames(small_dataset):
    """A non-default scorer/encoder must not read the cached products."""
    from repro.analysis.toxicity import toxicity_analysis
    from repro.nlp.toxicity import PerspectiveScorer

    default = toxicity_analysis(small_dataset)
    custom = toxicity_analysis(small_dataset, scorer=PerspectiveScorer())
    assert custom.pct_tweets_toxic == default.pct_tweets_toxic
    assert custom.pct_users_toxic_on_both == default.pct_users_toxic_on_both
