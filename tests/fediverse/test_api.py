"""Tests for repro.fediverse.api (the crawler-facing client)."""

import datetime as dt

import pytest

from repro.fediverse.api import MastodonClient
from repro.fediverse.errors import (
    AccountNotFoundError,
    InstanceDownError,
    InstanceNotFoundError,
)
from repro.fediverse.network import FediverseNetwork

WHEN = dt.datetime(2022, 10, 28, 12, 0)


@pytest.fixture
def setup():
    net = FediverseNetwork()
    inst = net.create_instance("crawl.me")
    other = net.create_instance("elsewhere.org")
    inst.register("alice", when=WHEN)
    other.register("bob", when=WHEN)
    net.follow("alice@crawl.me", "bob@elsewhere.org", WHEN)
    for i in range(100):
        net.post_status(
            "alice@crawl.me", f"status {i}", WHEN + dt.timedelta(minutes=i)
        )
    return net, MastodonClient(net)


class TestLookup:
    def test_lookup_account(self, setup):
        __, client = setup
        account = client.lookup_account("alice@crawl.me")
        assert account.acct == "alice@crawl.me"

    def test_unknown_account(self, setup):
        __, client = setup
        with pytest.raises(AccountNotFoundError):
            client.lookup_account("ghost@crawl.me")

    def test_unknown_instance(self, setup):
        __, client = setup
        with pytest.raises(InstanceNotFoundError):
            client.lookup_account("x@unknown.host")

    def test_down_instance_raises(self, setup):
        net, client = setup
        net.get_instance("crawl.me").down = True
        with pytest.raises(InstanceDownError):
            client.lookup_account("alice@crawl.me")

    def test_account_summary(self, setup):
        __, client = setup
        summary = client.account_summary("alice@crawl.me")
        assert summary["statuses_count"] == 100
        assert summary["following_count"] == 1
        assert summary["followers_count"] == 0
        assert summary["moved_to"] is None
        assert summary["created_at"] == WHEN


class TestStatuses:
    def test_page_is_newest_first(self, setup):
        __, client = setup
        page = client.account_statuses("alice@crawl.me")
        assert page.statuses[0].text == "status 99"
        assert len(page.statuses) == 40
        assert page.max_id is not None

    def test_pagination_walks_backwards(self, setup):
        __, client = setup
        first = client.account_statuses("alice@crawl.me")
        second = client.account_statuses("alice@crawl.me", max_id=first.max_id)
        assert second.statuses[0].status_id < first.statuses[-1].status_id

    def test_drain_all_chronological(self, setup):
        __, client = setup
        statuses = client.account_statuses_all("alice@crawl.me")
        assert len(statuses) == 100
        ids = [s.status_id for s in statuses]
        assert ids == sorted(ids)

    def test_window_filter(self, setup):
        __, client = setup
        statuses = client.account_statuses_all(
            "alice@crawl.me",
            since=dt.date(2022, 10, 28),
            until=dt.date(2022, 10, 28),
        )
        assert len(statuses) == 100  # all posted the same day

        none = client.account_statuses_all(
            "alice@crawl.me", since=dt.date(2022, 11, 5), until=dt.date(2022, 11, 6)
        )
        assert none == []

    def test_down_instance(self, setup):
        net, client = setup
        net.get_instance("crawl.me").down = True
        with pytest.raises(InstanceDownError):
            client.account_statuses("alice@crawl.me")


class TestFollowingAndActivity:
    def test_account_following(self, setup):
        __, client = setup
        assert client.account_following("alice@crawl.me") == ["bob@elsewhere.org"]

    def test_instance_activity_rows(self, setup):
        __, client = setup
        rows = client.instance_activity("crawl.me")
        assert sum(r["statuses"] for r in rows) == 100
        assert all(set(r) == {"week", "statuses", "logins", "registrations"} for r in rows)

    def test_request_counter_increases(self, setup):
        __, client = setup
        before = client.request_count
        client.instance_activity("crawl.me")
        assert client.request_count == before + 1


class TestStreamingIterators:
    def test_iter_statuses_newest_first(self, setup):
        __, client = setup
        streamed = list(client.iter_account_statuses("alice@crawl.me"))
        assert len(streamed) == 100
        ids = [s.status_id for s in streamed]
        assert ids == sorted(ids, reverse=True)

    def test_iter_matches_drained_list(self, setup):
        __, client = setup
        streamed = list(client.iter_account_statuses("alice@crawl.me"))
        drained = client.account_statuses_all("alice@crawl.me")
        assert [s.status_id for s in reversed(streamed)] == [
            s.status_id for s in drained
        ]

    def test_iter_is_lazy(self, setup):
        net, client = setup
        before = client.request_count
        iterator = client.iter_account_statuses("alice@crawl.me")
        assert client.request_count == before
        next(iterator)
        assert client.request_count == before + 1
