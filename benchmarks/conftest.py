"""Benchmark fixtures.

One world + dataset pair is built per benchmark session at ``BENCH_SCALE``
(override with the ``REPRO_BENCH_SCALE`` environment variable) and every
figure benchmark measures the cost of regenerating its figure from that
dataset.  The per-figure shape assertions keep the benchmarks honest: a
benchmark that regenerates the wrong figure is worthless however fast.

The session's world build and pipeline run execute under a live metrics
registry, and their stage timings are written to ``BENCH_pipeline.json`` at
the repository root — the perf trajectory future PRs compare against.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import obs
from repro.collection.dataset import MigrationDataset
from repro.collection.pipeline import collect_dataset
from repro.simulation.world import World, build_world

BENCH_SEED = 7
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.01"))

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_ARTIFACT = REPO_ROOT / "BENCH_pipeline.json"

_session_registry = obs.MetricsRegistry()


@pytest.fixture(scope="session")
def bench_world() -> World:
    with obs.use(_session_registry):
        return build_world(seed=BENCH_SEED, scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def bench_dataset(bench_world: World) -> MigrationDataset:
    with obs.use(_session_registry):
        dataset = collect_dataset(bench_world)
    _write_pipeline_artifact(_session_registry)
    return dataset


def _write_pipeline_artifact(registry: obs.MetricsRegistry) -> None:
    """Persist the session's stage timings as the perf-trajectory artifact."""
    stages = [
        {
            "name": span.name,
            "depth": span.depth,
            "wall_seconds": span.wall_seconds,
            "api_requests": span.api_requests,
            "wait_seconds": span.wait_seconds,
            "meta": dict(span.meta),
        }
        for span in registry.tracer.walk()
    ]
    payload = {
        "seed": BENCH_SEED,
        "scale": BENCH_SCALE,
        "stages": stages,
        "api_requests": {
            "twitter": registry.counter_total("twitter.ratelimit.requests"),
            "mastodon": registry.counter_total("mastodon.api.requests"),
        },
        "simulated_wait_seconds": registry.counter_total(
            "twitter.ratelimit.wait_seconds"
        ),
    }
    BENCH_ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
