"""The world: builds both platforms and replays the migration event.

``World.simulate()`` runs in two phases:

1. **Dynamics** (day by day over the study window): the contagion model
   decides who migrates; migrators pick an instance (possibly self-hosting),
   activate or create their Mastodon account, and wire up follows with
   already-migrated neighbours; migrated users may later switch instance
   under social pull.

2. **Content materialisation** (after the dynamics): timelines are generated
   retroactively for every migrant — tweets across the whole window,
   announcement tweets on migration day, statuses after migration,
   cross-posted mirrors and paraphrases — plus keyword chatter from
   non-migrating users and aggregate background load on every instance.
   Nothing in the dynamics depends on post *content*, so deferring content
   keeps the daily loop linear in the number of agents.

Finally, crawl-time failure states are planted: suspended / deactivated /
protected Twitter accounts and downed instances, with the paper's rates.
"""

from __future__ import annotations

import datetime as _dt
import gc
import time
from collections import Counter

import numpy as np

from repro.fediverse.directory import InstanceDirectory
from repro.fediverse.errors import DuplicateAccountError
from repro.fediverse.network import FediverseNetwork
from repro.nlp.generator import PostGenerator
from repro.simulation.behavior import (
    chatter_volume_multiplier,
    crossposter_active,
    mastodon_topic_mixture,
    paraphrase,
)
from repro.simulation.config import WorldConfig
from repro.simulation.contagion import ContagionModel
from repro.simulation.events import EventTimeline
from repro.simulation.instance_choice import InstanceChooser
from repro.simulation.population import PopulationBuilder, SimUser, generate_instances, register_instances
from repro.simulation.trends import TrendsService
from repro.twitter.api import TwitterAPI
from repro.twitter.graph import FollowGraph
from repro.twitter.models import AccountState, Tweet
from repro.twitter.store import TwitterStore
from repro.util.clock import TAKEOVER_DATE, date_range
from repro.util.ids import SnowflakeGenerator
from repro.util.rng import RngTree
from repro.util.rngcompat import build_cdf, fast_shape_prod, poisson_batch

from repro.simulation.switching import SwitchModel

#: posting-time anchors; the offsets below recur for every generated post,
#: so the (tiny, bounded) timedelta objects are memoised instead of rebuilt
_TIME_8 = _dt.time(8, 0)
_TIME_9 = _dt.time(9, 0)
_TWEET_OFFSETS: dict[int, _dt.timedelta] = {}
_STATUS_OFFSETS: dict[int, _dt.timedelta] = {}


def _tweet_offset(minutes: int, seconds: int) -> _dt.timedelta:
    key = minutes * 50 + seconds
    delta = _TWEET_OFFSETS.get(key)
    if delta is None:
        delta = _TWEET_OFFSETS[key] = _dt.timedelta(minutes=minutes, seconds=seconds)
    return delta


def _status_offset(seq: int) -> _dt.timedelta:
    delta = _STATUS_OFFSETS.get(seq)
    if delta is None:
        delta = _STATUS_OFFSETS[seq] = _dt.timedelta(minutes=11 * seq)
    return delta


class World:
    """A fully-built synthetic world ready for collection."""

    def __init__(self, config: WorldConfig) -> None:
        config.validate()
        self.config = config
        self.rng = RngTree(config.seed)

        self.twitter_store = TwitterStore()
        self.twitter_graph = FollowGraph()
        self.network = FediverseNetwork()
        self.timeline = EventTimeline()
        self.trends = TrendsService(self.timeline, self.rng.stream("trends"))

        self.instance_specs = generate_instances(config, self.rng.stream("instances"))
        register_instances(self.network, self.instance_specs)
        self._install_moderation_policies()
        self._flagships = frozenset(
            spec.domain for spec in self.instance_specs if spec.flagship
        )

        builder = PopulationBuilder(config, self.rng.stream("population"))
        self.agents, self.candidate_ids, self.hub_ids, self.chatter_ids = builder.build(
            self.twitter_store, self.twitter_graph
        )

        self._contagion = ContagionModel(
            config, self.timeline, self.twitter_graph, self.rng.stream("contagion")
        )
        self._chooser = InstanceChooser(
            config, self.instance_specs, self.rng.stream("choice")
        )
        self._switcher = SwitchModel(
            config, self._flagships, self.rng.stream("switching")
        )
        self._generator = PostGenerator(self.rng.stream("text"))
        self._tweet_ids = SnowflakeGenerator(shard=2)

        self.migrated_ids: set[int] = set()
        #: per-candidate count of migrated followees (incremental contagion state)
        self._migrated_followee_count: dict[int, int] = {}
        #: per-candidate Counter of migrated followees' current instances
        self._followee_instances: dict[int, Counter] = {}
        #: per-agent migrated-followee lists for the boost picker; valid only
        #: during materialisation, when the migrated set is frozen
        self._boost_followees: dict[int, list[SimUser]] = {}
        self._simulated = False

    # -- public API ---------------------------------------------------------------

    def simulate(self) -> None:
        """Run the full event simulation (idempotence-guarded).

        Materialisation draws hundreds of thousands of bounded-integer
        batches; :func:`fast_shape_prod` short-circuits the shape
        arithmetic numpy re-dispatches on each of them (values and
        bitstream unchanged — see its docstring).

        When the active registry is live, the hot loop emits per-tick
        heartbeat events (tick index, adoptions, posts, ticks/s, ETA)
        through the event stream — progress visibility into the ~85%-of-
        wall-time phase.  The heartbeats only *read* simulation state and
        wall clocks, never an RNG: the generated world is byte-identical
        with the event stream on or off.
        """
        if self._simulated:
            raise RuntimeError("world already simulated")
        from repro import obs

        events = obs.current().events
        with fast_shape_prod():
            self._seed_pre_takeover_accounts()
            days = list(date_range(self.config.start, self.config.end))
            started = time.perf_counter()
            for tick, day in enumerate(days):
                migrated_before = len(self.migrated_ids)
                self._run_migrations(day)
                self._run_switches(day)
                if events.enabled:
                    self._dynamics_heartbeat(
                        events, tick, len(days), day, migrated_before, started
                    )
            self._materialise_content()
            self._inject_background_load()
            self._plant_crawl_failures()
        self._simulated = True

    def _dynamics_heartbeat(
        self,
        events,
        tick: int,
        ticks: int,
        day: _dt.date,
        migrated_before: int,
        started: float,
    ) -> None:
        """One progress event per simulated day of the dynamics loop."""
        elapsed = time.perf_counter() - started
        rate = (tick + 1) / elapsed if elapsed > 0 else 0.0
        events.heartbeat(
            "world.simulate",
            phase="dynamics",
            tick=tick,
            ticks=ticks,
            day=day.isoformat(),
            adoptions=len(self.migrated_ids) - migrated_before,
            migrated_total=len(self.migrated_ids),
            posts_total=self.twitter_store.tweet_count,
            ticks_per_s=round(rate, 3),
            eta_seconds=round((ticks - tick - 1) / rate, 3) if rate > 0 else None,
        )

    def twitter_api(self, faults=None, retry=None) -> TwitterAPI:
        """A fresh API client (own rate-limit state) over the world's Twitter.

        ``faults`` (a :class:`repro.faults.FaultPlan`) and ``retry`` (a
        :class:`repro.transport.RetryPolicy`) configure the client's
        transport; by default nothing is injected and calls are single-shot.
        """
        return TwitterAPI(
            self.twitter_store, self.twitter_graph, faults=faults, retry=retry
        )

    def directory(self) -> InstanceDirectory:
        """The instances.social view at collection time (self-hosts included)."""
        return InstanceDirectory.from_network(self.network)

    @property
    def migrants(self) -> list[SimUser]:
        """Ground truth: every agent that migrated (matched or not)."""
        return [a for a in self.agents.values() if a.migrated]

    @property
    def switchers(self) -> list[SimUser]:
        return [a for a in self.agents.values() if a.switch_day is not None]

    def _install_moderation_policies(self) -> None:
        """Some admins run MRF keyword filters against the toxic lexicon.

        Filtering applies to *federated* deliveries only, so authors'
        timelines (what the crawler collects) are unaffected — this models
        the real division of labour: remote filth is filtered at the border,
        local filth is the admin's manual moderation queue (§6.3).
        """
        from repro.nlp.vocabulary import TOXIC_LEXICON

        rng = self.rng.stream("moderation")
        strong_words = [w for w, weight in TOXIC_LEXICON.items() if weight >= 0.45]
        for instance in self.network.instances():
            if rng.random() < self.config.moderated_instance_fraction:
                for word in strong_words:
                    instance.policy.block_keyword(word)

    # -- phase 0: pre-takeover adopters ------------------------------------------------

    def _seed_pre_takeover_accounts(self) -> None:
        """Some candidates already own a (dormant) Mastodon account.

        The paper finds 21% of matched accounts predate the takeover; we give
        the same fraction of candidates a backdated account which activates
        if/when they migrate.
        """
        rng = self.rng.stream("pre_takeover")
        config = self.config
        empty: Counter = Counter()
        for user_id in self.candidate_ids:
            agent = self.agents[user_id]
            if rng.random() >= config.pre_takeover_account_fraction:
                continue
            age_days = int(rng.integers(35, 2000))
            created = _dt.datetime.combine(
                TAKEOVER_DATE - _dt.timedelta(days=age_days), _dt.time(15, 0)
            )
            domain = self._chooser.choose(agent, empty)
            username = self._mastodon_username(agent, domain)
            if username is None:
                continue
            instance = self.network.get_instance(domain)
            instance.register(username, display_name=agent.username, when=created)
            agent.pre_takeover_account = True
            agent.mastodon_username = username
            agent.first_username = username
            agent.current_instance = domain
            agent.first_instance = domain
            agent.mastodon_created = created
            self._chooser.record_population(domain)

    # -- phase 1: daily dynamics ----------------------------------------------------------

    def _run_migrations(self, day: _dt.date) -> None:
        for user_id in self.candidate_ids:
            agent = self.agents[user_id]
            if agent.migrated:
                continue
            fraction = self._contagion_fraction(user_id)
            hazard = self._contagion.hazard_given_fraction(agent, day, fraction)
            if self._contagion_rng.random() >= hazard:
                continue
            self._migrate(agent, day)

    @property
    def _contagion_rng(self) -> np.random.Generator:
        return self.rng.stream("contagion-decisions")

    def _contagion_fraction(self, user_id: int) -> float:
        degree = self.twitter_graph.followee_count(user_id)
        if degree == 0:
            return 0.0
        return self._migrated_followee_count.get(user_id, 0) / degree

    def _migrate(self, agent: SimUser, day: _dt.date) -> None:
        when = _dt.datetime.combine(day, _dt.time(18, 0)) + _dt.timedelta(
            seconds=int(self._contagion_rng.integers(0, 14_000))
        )
        if not agent.pre_takeover_account:
            domain = self._choose_instance(agent)
            username = self._mastodon_username(agent, domain)
            if username is None:  # pathological collision; skip this user
                return
            self.network.get_instance(domain).register(
                username, display_name=agent.username, when=when
            )
            agent.mastodon_username = username
            agent.first_username = username
            agent.current_instance = domain
            agent.first_instance = domain
            agent.mastodon_created = when
            self._chooser.record_population(domain)
        agent.migrated = True
        agent.migration_day = day
        self.migrated_ids.add(agent.user_id)
        self._wire_mastodon_follows(agent, when)
        if agent.self_hosted:
            self._discover_follows(agent, when)
        self._notify_followers(agent)

    def _choose_instance(self, agent: SimUser) -> str:
        if self._chooser.wants_self_host(agent):
            domain = self._chooser.new_self_host_domain(agent)
            if not self.network.has_instance(domain):
                self.network.create_instance(
                    domain,
                    topic=agent.main_topic,
                    created_at=self._today_hint(agent),
                )
                # running one's own server correlates with heavy use: the
                # Figure 6 paradox (single-user instances, more statuses)
                agent.status_rate *= self.config.self_host_activity_boost
                agent.self_hosted = True
                return domain
        counts = self._followee_instances.get(agent.user_id, Counter())
        return self._chooser.choose(agent, counts)

    def _today_hint(self, agent: SimUser) -> _dt.date:
        # self-hosted instances spin up the day their owner migrates
        return agent.migration_day or TAKEOVER_DATE

    def _mastodon_username(self, agent: SimUser, domain: str) -> str | None:
        instance = self.network.get_instance(domain)
        candidates = [agent.username] if agent.same_username else []
        candidates += [f"{agent.username}_m", f"{agent.username}2", f"real{agent.username}"]
        if not agent.same_username:
            candidates.insert(0, f"{agent.username.split('_')[0]}tooter_{agent.user_id % 10_000}")
        for name in candidates:
            if not instance.has_account(name):
                return name
        return None

    def _wire_mastodon_follows(self, agent: SimUser, when: _dt.datetime) -> None:
        """Recreate the ego network on Mastodon among migrated neighbours.

        A small share of migrants never re-follow anyone (the paper's 3.6%
        following nobody / 6.01% with no followers): they still *receive*
        follows from later migrants, but import nothing themselves.
        """
        acct = agent.mastodon_acct
        assert acct is not None
        rewire_rng = self.rng.stream("rewire")
        # Self-hosters are the most dedicated users: they always import their
        # follow list and stay discoverable (part of the Fig. 6 paradox).
        agent.rewires_follows = agent.self_hosted or (
            rewire_rng.random() >= self.config.no_rewire_fraction
        )
        agent.discoverable = agent.self_hosted or (
            rewire_rng.random() >= self.config.undiscoverable_fraction
        )
        if agent.rewires_follows:
            for followee_id in self.twitter_graph.followees_of(agent.user_id):
                other = self.agents.get(followee_id)
                if other is None or not other.migrated or other.mastodon_acct is None:
                    continue
                if other.discoverable:
                    self.network.follow(acct, other.mastodon_acct, when)
        if agent.discoverable:
            for follower_id in self.twitter_graph.followers_of(agent.user_id):
                other = self.agents.get(follower_id)
                if other is None or not other.migrated or other.mastodon_acct is None:
                    continue
                if other.rewires_follows and other.mastodon_acct != acct:
                    self.network.follow(other.mastodon_acct, acct, when)

    def _discover_follows(self, agent: SimUser, when: _dt.datetime) -> None:
        """Dedicated self-hosters build their network actively.

        Beyond re-following their Twitter ego network, they discover accounts
        through hashtags and directories — extra follows to random earlier
        migrants, some of whom follow back.  This is half of the Figure 6
        paradox: single-user instances, larger social networks.
        """
        rng = self.rng.stream("discovery")
        pool = [
            uid for uid in self.migrated_ids
            if uid != agent.user_id and self.agents[uid].discoverable
        ]
        if not pool:
            return
        k = min(len(pool), int(8 + agent.engagement * 14))
        picks = rng.choice(len(pool), size=k, replace=False)
        acct = agent.mastodon_acct
        assert acct is not None
        for idx in picks:
            other = self.agents[pool[int(idx)]]
            if other.mastodon_acct is None or other.mastodon_acct == acct:
                continue
            self.network.follow(acct, other.mastodon_acct, when)
            if rng.random() < 0.35:  # follow-backs
                self.network.follow(other.mastodon_acct, acct, when)

    def _notify_followers(self, agent: SimUser) -> None:
        """Update incremental contagion state after ``agent`` migrated."""
        domain = agent.current_instance
        for follower_id in self.twitter_graph.followers_of(agent.user_id):
            if follower_id in self.agents and self.agents[follower_id].role == "candidate":
                self._migrated_followee_count[follower_id] = (
                    self._migrated_followee_count.get(follower_id, 0) + 1
                )
                self._followee_instances.setdefault(follower_id, Counter())[domain] += 1

    # -- switching ------------------------------------------------------------------------

    def _run_switches(self, day: _dt.date) -> None:
        for user_id in sorted(self.migrated_ids):
            agent = self.agents[user_id]
            if agent.switch_day is not None or agent.migration_day == day:
                continue
            counts = self._followee_instances.get(user_id, Counter())
            target = self._switcher.propose_switch(agent, counts)
            if target is not None:
                self._switch(agent, target, day)

    def _switch(self, agent: SimUser, target: str, day: _dt.date) -> None:
        when = _dt.datetime.combine(day, _dt.time(20, 0))
        instance = self.network.get_instance(target)
        username = agent.mastodon_username
        assert username is not None and agent.current_instance is not None
        name = username
        suffix = 0
        while instance.has_account(name):
            suffix += 1
            name = f"{username}{suffix}"
        instance.register(name, display_name=agent.username, when=when)
        old_acct = agent.mastodon_acct
        assert old_acct is not None
        new_acct = f"{name}@{target}"
        self.network.move_account(old_acct, new_acct, when)
        old_domain = agent.current_instance
        agent.mastodon_username = name
        agent.second_instance = target
        agent.current_instance = target
        agent.switch_day = day
        self._chooser.record_population(target)
        # followers' instance counters track the move
        for follower_id in self.twitter_graph.followers_of(agent.user_id):
            counts = self._followee_instances.get(follower_id)
            if counts is not None and counts.get(old_domain, 0) > 0:
                counts[old_domain] -= 1
                counts[target] += 1

    # -- phase 2: content materialisation ---------------------------------------------------

    #: materialisation heartbeat cadence (one event per this many migrants)
    _HEARTBEAT_EVERY = 256

    def _materialise_content(self) -> None:
        from repro import obs

        events = obs.current().events
        rng = self.rng.stream("content")
        # migration order, so boosters find their earlier-migrated followees'
        # statuses already materialised
        ordered = sorted(
            self.migrated_ids,
            key=lambda uid: (self.agents[uid].migration_day, uid),
        )
        days = list(date_range(self.config.start, self.config.end))
        started = time.perf_counter()
        for done, user_id in enumerate(ordered, start=1):
            self._materialise_migrant(self.agents[user_id], rng, days)
            if events.enabled and (
                done % self._HEARTBEAT_EVERY == 0 or done == len(ordered)
            ):
                elapsed = time.perf_counter() - started
                rate = done / elapsed if elapsed > 0 else 0.0
                events.heartbeat(
                    "world.simulate",
                    phase="materialise",
                    tick=done - 1,
                    ticks=len(ordered),
                    agents_done=done,
                    posts_total=self.twitter_store.tweet_count,
                    agents_per_s=round(rate, 3),
                    eta_seconds=(
                        round((len(ordered) - done) / rate, 3) if rate > 0 else None
                    ),
                )
        self._materialise_chatter(rng)

    def _materialise_migrant(
        self, agent: SimUser, rng: np.random.Generator, days: list[_dt.date]
    ) -> None:
        """Generate one migrant's full two-platform timeline."""
        generator = self._generator
        recent_tweets: list[str] = []
        # the twitter-side mixture is constant per agent: build its cdf once
        twitter_cdf = build_cdf(agent.topic_mixture)
        # per-day rates, unrolled from twitter_daily_rate / mastodon_daily_rate
        # (agent.migrated is True for everyone materialised here); the draws
        # themselves stay scalar and in day order — only the float arithmetic
        # feeding them is hoisted
        mig_day = agent.migration_day
        tweet_rate = agent.tweet_rate
        tweet_rate_after = tweet_rate * 0.9
        status_rate = agent.status_rate
        # the fediverse spike bottoms out at its 0.15 floor three weeks in
        # (0.65 * 0.93**d < 0.15 for d >= 21), making the mixture constant
        steady_mixture: tuple[np.ndarray, np.ndarray] | None = None
        for day in days:
            tw_rate = (
                tweet_rate if mig_day is None or day < mig_day else tweet_rate_after
            )
            n_tweets = int(rng.poisson(tw_rate))
            day_tweets: list[str] = []
            for k in range(n_tweets):
                # make_post("twitter"), unrolled: topic draw, then toxicity
                # draw, then the text draws — same order, one call fewer
                text = generator.generate(
                    generator.pick_topic_from_cdf(twitter_cdf),
                    toxic=rng.random() < agent.toxicity_twitter,
                    hashtag_prob=0.45,
                )
                source = agent.preferred_source
                # bridges existed (quietly) before the takeover: long-time
                # fediverse users mirrored the odd post, which is the small
                # pre-takeover baseline Figure 12's growth factors divide by
                if (
                    agent.crossposter is not None
                    and agent.pre_takeover_account
                    and (agent.migration_day is None or day < agent.migration_day)
                    and rng.random() < 0.05
                ):
                    source = agent.crossposter
                self._add_tweet(agent, day, text, source=source, seq=k)
                day_tweets.append(text)
            if agent.migration_day == day and agent.announce_via == "tweet":
                self._announce_by_tweet(agent, day)
            elif agent.migration_day == day and rng.random() < 0.8:
                self._announce_by_tweet(agent, day)  # bio users usually tweet too

            if mig_day is None or day < mig_day or status_rate <= 0.0:
                ms_rate = 0.0
            else:
                days_in = (day - mig_day).days
                ramp = 0.45 + 0.11 * days_in
                ms_rate = status_rate * (ramp if ramp < 1.0 else 1.0)
            n_statuses = int(rng.poisson(ms_rate))
            if n_statuses and agent.mastodon_acct is not None:
                days_in = (day - mig_day).days if mig_day else 0
                if days_in >= 21:
                    if steady_mixture is None:
                        mixture = mastodon_topic_mixture(agent, days_in)
                        steady_mixture = (mixture, build_cdf(mixture))
                    mixture, mixture_cdf = steady_mixture
                else:
                    mixture = mastodon_topic_mixture(agent, days_in)
                    mixture_cdf = build_cdf(mixture)
                active_day = agent.switch_day is None or day < agent.switch_day
                acct = agent.first_acct if active_day else agent.mastodon_acct
                assert acct is not None
                self.network.record_login(acct, day)
                for k in range(n_statuses):
                    self._add_status(
                        agent, acct, day, k, mixture, mixture_cdf, recent_tweets, rng
                    )
            recent_tweets.extend(day_tweets)
            if len(recent_tweets) > 30:
                del recent_tweets[:-30]
        if agent.migration_day is not None and agent.announce_via == "bio":
            self._announce_in_bio(agent)

    def _add_status(
        self,
        agent: SimUser,
        acct: str,
        day: _dt.date,
        seq: int,
        mixture: np.ndarray,
        mixture_cdf: np.ndarray,
        recent_tweets: list[str],
        rng: np.random.Generator,
    ) -> None:
        config = self.config
        when = _dt.datetime.combine(day, _TIME_9) + _status_offset(seq)
        crosspost = (
            agent.crossposter is not None
            and rng.random() < config.crosspost_mirror_rate
            and crossposter_active(rng, day)
        )
        if crosspost:
            generator = self._generator
            text = generator.generate(
                generator.pick_topic_from_cdf(mixture_cdf),
                toxic=rng.random() < agent.toxicity_mastodon,
                hashtag_prob=0.62,
            )
            self.network.post_status(acct, text, when, application=agent.crossposter)
            # the bridge mirrors the status to Twitter verbatim
            self._add_tweet(agent, day, text, source=agent.crossposter, seq=100 + seq)
            return
        if rng.random() < config.boost_rate:
            boosted = self._boost_candidate(agent, rng)
            if boosted is not None:
                self.network.boost(acct, boosted, when)
                return
        if recent_tweets and agent.mirror_rate > 0 and rng.random() < agent.mirror_rate:
            original = recent_tweets[int(rng.integers(0, len(recent_tweets)))]
            text = paraphrase(rng, original, self._generator.vocabulary)
        else:
            generator = self._generator
            text = generator.generate(
                generator.pick_topic_from_cdf(mixture_cdf),
                toxic=rng.random() < agent.toxicity_mastodon,
                hashtag_prob=0.62,
            )
        self.network.post_status(acct, text, when, application="Web")

    def _boost_candidate(self, agent: SimUser, rng: np.random.Generator):
        """A recent status by a migrated followee, if any exists yet.

        Content is materialised in migration order, so earlier migrants'
        statuses already exist when later migrants boost.  The migrated set
        is frozen by then, so the followee list is computed once per agent
        and copied before the shuffle (the pre-shuffle order must be the
        same on every call, exactly as a fresh rebuild would produce).
        """
        cached = self._boost_followees.get(agent.user_id)
        if cached is None:
            cached = [
                self.agents[f]
                for f in self.twitter_graph.followees_of(agent.user_id)
                if f in self.agents and self.agents[f].migrated
            ]
            self._boost_followees[agent.user_id] = cached
        followees = cached.copy()
        rng.shuffle(followees)
        for other in followees[:5]:
            if other.first_instance is None:
                continue
            instance = self.network.get_instance(other.first_instance)
            username = other.first_username or other.mastodon_username
            if username is None or not instance.has_account(username):
                continue
            originals = instance.original_statuses_of(username)
            if originals:
                return originals[int(rng.integers(0, len(originals)))]
        return None

    def _add_tweet(
        self, agent: SimUser, day: _dt.date, text: str, source: str, seq: int
    ) -> Tweet:
        when = _dt.datetime.combine(day, _TIME_8) + _tweet_offset(
            min(13 * seq, 900), agent.user_id % 50
        )
        tweet = Tweet(
            tweet_id=self._tweet_ids.next_id(when),
            author_id=agent.user_id,
            created_at=when,
            text=text,
            source=source,
        )
        self.twitter_store.add_tweet(tweet)
        return tweet

    def _announce_by_tweet(self, agent: SimUser, day: _dt.date) -> None:
        handle = agent.first_acct
        if handle is None:
            return
        text = self._generator.migration_announcement(handle, agent.announce_style)
        self._add_tweet(agent, day, text, source=agent.preferred_source, seq=90)

    def _announce_in_bio(self, agent: SimUser) -> None:
        handle = agent.first_acct
        if handle is None:
            return
        user = self.twitter_store.get_user(agent.user_id)
        topic = self._generator.vocabulary.topic(agent.main_topic)
        user.description = self._generator.profile_bio(topic, mastodon_handle=handle)

    def _materialise_chatter(self, rng: np.random.Generator) -> None:
        """Keyword tweets from users who never migrate (collection noise)."""
        generator = self._generator
        fediverse_topic = generator.vocabulary.topic("fediverse")
        migrant_handles = [
            a.first_acct for a in self.migrants if a.first_acct is not None
        ]
        for user_id in self.chatter_ids:
            agent = self.agents[user_id]
            n_posts = 1 + int(rng.poisson(1.0))
            for k in range(n_posts):
                offset = int(rng.integers(0, (self.config.end - self.config.start).days + 1))
                day = self.config.start + _dt.timedelta(days=offset)
                if rng.random() > chatter_volume_multiplier(day):
                    continue
                roll = rng.random()
                if roll < 0.75 or not migrant_handles:
                    text = generator.generate(
                        fediverse_topic, hashtag_prob=0.85, mention_migration=True
                    )
                elif roll < 0.9:
                    # link an instance root URL (no username -> unmatchable)
                    spec = self.instance_specs[int(rng.integers(0, len(self.instance_specs)))]
                    text = f"Everyone seems to be joining https://{spec.domain} these days"
                else:
                    # mention someone ELSE's handle (matcher must reject it)
                    handle = migrant_handles[int(rng.integers(0, len(migrant_handles)))]
                    username, domain = handle.split("@", 1)
                    text = f"You should all follow @{username}@{domain} over on mastodon"
                self._add_tweet(agent, day, text, source=agent.preferred_source, seq=k)

    # -- phase 3: background load and failure injection ------------------------------------

    def _inject_background_load(self) -> None:
        """Aggregate registrations/logins/statuses for untracked users (Fig. 3)."""
        config = self.config
        rng = self.rng.stream("background")
        total_migrants = max(1, len(self.migrants))
        intensity_sum = sum(
            self.timeline.intensity(day) for day in date_range(config.start, config.end)
        )
        daily_new = (
            config.background_registration_multiplier * total_migrants / max(1.0, intensity_sum)
        )
        weights = np.array(
            [max(spec.weight, 1e-6) for spec in self.instance_specs]
        )
        weights = weights / weights.sum()
        base_logins = np.array(
            [20.0 * spec.weight * total_migrants for spec in self.instance_specs]
        )
        for day in date_range(config.start, config.end):
            intensity = self.timeline.intensity(day)
            registrations = rng.poisson(daily_new * intensity * weights)
            # one batched draw per day instead of one scalar poisson per
            # instance; poisson_batch's element-order contract keeps the
            # bitstream identical to the per-spec loop it replaces
            login_draws = poisson_batch(rng, base_logins * (0.15 + 0.85 * intensity))
            for spec, regs, logins in zip(self.instance_specs, registrations, login_draws):
                instance = self.network.get_instance(spec.domain)
                logins = int(logins)
                statuses = int(logins * config.background_statuses_per_login)
                instance.record_aggregate_activity(
                    day,
                    statuses=statuses,
                    logins=logins,
                    registrations=int(regs),
                )

    def _plant_crawl_failures(self) -> None:
        """Account states and instance downtime, at the paper's §3.2 rates."""
        config = self.config
        rng = self.rng.stream("failures")
        for agent in self.migrants:
            roll = rng.random()
            user = self.twitter_store.get_user(agent.user_id)
            if roll < config.suspended_fraction:
                user.state = AccountState.SUSPENDED
            elif roll < config.suspended_fraction + config.deactivated_fraction:
                user.state = AccountState.DEACTIVATED
            elif roll < (
                config.suspended_fraction
                + config.deactivated_fraction
                + config.protected_fraction
            ):
                user.state = AccountState.PROTECTED
        # Downtime cost the paper 11.58% of Mastodon timelines (a share of
        # *users*, not instances).  Small and mid-size instances, strained by
        # the migration wave, go down until that user share is reached; the
        # professionally-run flagships stay up.
        populations = Counter()
        for agent in self.migrants:
            if agent.first_instance is not None:
                populations[agent.first_instance] += 1
        target_users = config.instance_down_fraction * sum(populations.values())
        candidates = [
            domain for domain in populations if domain not in self._flagships
        ]
        rng.shuffle(candidates)
        downed_users = 0.0
        for domain in candidates:
            if downed_users >= target_users:
                break
            instance = self.network.get_instance(domain)
            instance.down = True
            downed_users += populations[domain]


def build_world(seed: int = 7, scale: float = 0.01, **overrides) -> World:
    """Build and simulate a world in one call.

    ``overrides`` are :class:`WorldConfig` field overrides, e.g.
    ``build_world(seed=1, scale=0.005, contagion_weight=0.0)`` for the
    no-contagion ablation.
    """
    from repro import obs

    registry = obs.current()
    # The build allocates millions of small, acyclic objects (tweets,
    # statuses, postings); the cyclic collector's threshold-triggered full
    # sweeps walk that whole heap to find nothing.  Defer cycle collection
    # to the end of the build and run one sweep on exit.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        with registry.span("build_world") as span:
            with registry.span("world.init"):
                config = WorldConfig(seed=seed, scale=scale, **overrides)
                world = World(config)
            with registry.span("world.simulate"):
                world.simulate()
            span.annotate(
                seed=seed,
                scale=scale,
                agents=len(world.agents),
                migrants=len(world.migrants),
                tweets=world.twitter_store.tweet_count,
            )
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()
    return world
