"""End-to-end collection: Section 3, start to finish.

``collect_dataset(world)`` runs, in order:

1. instance-index compilation,
2. migration-tweet search,
3. hierarchical handle matching,
4. Twitter and Mastodon timeline crawls (with failure accounting),
5. the stratified followee crawl,
6. the weekly-activity crawl over every instance hosting a match,
7. a Google-Trends pull for the Figure 1 terms.

The result is a :class:`~repro.collection.dataset.MigrationDataset` that the
analyses consume; nothing downstream ever touches the world again.

Two orthogonal extensions ride on the same stage sequence (PR 10):

- **observer clock** — ``CollectionConfig.clock`` pretends the crawl runs
  on a given simulated day: every stage window is clipped to the clock, the
  weekly-activity rows keep only fully-elapsed weeks, and the trends noise
  stream is rewound so a re-pull at a later clock reproduces the earlier
  prefix.  A clocked dataset carries a manifest (``dataset_version`` +
  clock) in its headers.
- **resumability** — :func:`run_pipeline` can checkpoint after every stage
  (crawl cursor JSON + dataset snapshot) and re-enter at the first
  incomplete stage, producing the same bytes as an uninterrupted run.

``repro.incremental`` builds the delta-advance path on top of both.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.collection.cursor import (
    CollectionState,
    CrawlCursor,
    config_digest,
    dataset_version_for,
    load_cursor,
    save_cursor,
    shard_seed_digests,
    validate_cursor,
)
from repro.collection.dataset import CrawlCoverage, MatchedUser, MigrationDataset
from repro.collection.followees import budgeted_fraction, stratified_sample
from repro.collection.handle_matching import HandleMatcher
from repro.collection.instance_list import compile_instance_list
from repro.collection.timelines import finalize_timeline_metrics
from repro.collection.tweet_search import (
    CollectedTweets,
    TweetCollector,
    merge_collected,
)
from repro.errors import ConfigError, ResumeError
from repro.faults import FaultPlan
from repro.parallel.engine import ShardEngine
from repro.parallel.sharding import SHARD_COUNT
from repro.simulation.world import World
from repro.transport import RetryPolicy
from repro.util.clock import (
    SIM_END,
    SIM_START,
    TWEET_COLLECTION_END,
    TWEET_COLLECTION_START,
    week_label_start,
)


#: The seven numbered stages of :func:`collect_dataset`, in execution order.
#: Each runs inside a span named ``collect.<stage>`` under the
#: ``collect_dataset`` root span; CI's telemetry smoke run checks that the
#: exported trace names every one of them.
PIPELINE_STAGES = (
    "instance_list",
    "tweet_search",
    "handle_matching",
    "timelines",
    "followees",
    "weekly_activity",
    "trends",
)


@dataclass(frozen=True)
class CollectionConfig:
    """Knobs of the collection run (the paper's §3 choices).

    ``fault_plan`` injects transient failures at the client transport
    (default: none — a fault-free run is byte-identical to the
    pre-resilience pipeline); ``retry_policy`` is the resilience budget the
    crawlers spend against those faults, on the virtual clock.

    ``workers``/``backend`` control *scheduling* of the sharded crawl
    stages; ``shard_seed``/``shard_count`` control *determinism* — the
    dataset depends only on these (plus the world and fault plan), never
    on workers or backend.  See :mod:`repro.parallel`.

    ``clock`` is the observer's "today": when set, every crawl window is
    clipped to it (the simulated future does not exist yet) and the dataset
    is stamped with a monotonic ``dataset_version``.  The contract behind
    the incremental plane is that advancing the clock and re-collecting
    from scratch are byte-identical.  ``clock = None`` (the default) is the
    legacy full-window collection, bytes unchanged.
    """

    tweet_window_start: _dt.date = TWEET_COLLECTION_START
    tweet_window_end: _dt.date = TWEET_COLLECTION_END
    timeline_window_start: _dt.date = SIM_START
    timeline_window_end: _dt.date = SIM_END
    followee_sample_fraction: float = 0.10
    sampler_seed: int = 99
    fault_plan: FaultPlan = field(default_factory=FaultPlan.none)
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    workers: int = 1
    backend: str = "serial"
    shard_seed: int = 0
    shard_count: int = SHARD_COUNT
    clock: _dt.date | None = None

    def __post_init__(self) -> None:
        if self.clock is None:
            return
        if self.clock < self.tweet_window_start:
            raise ConfigError(
                f"clock {self.clock} predates the tweet window start "
                f"{self.tweet_window_start}: the §3.1 corpus would be empty"
            )
        if self.clock > self.timeline_window_end:
            raise ConfigError(
                f"clock {self.clock} is past the timeline window end "
                f"{self.timeline_window_end}; use clock=None for a full"
                " (unclocked) collection"
            )

    def effective_tweet_window(self) -> tuple[_dt.date, _dt.date]:
        """The §3.1 search window, clipped to the observer clock."""
        end = self.tweet_window_end
        if self.clock is not None:
            end = min(end, self.clock)
        return self.tweet_window_start, end

    def effective_timeline_window(self) -> tuple[_dt.date, _dt.date]:
        """The timeline-crawl window, clipped to the observer clock."""
        end = self.timeline_window_end
        if self.clock is not None:
            end = min(end, self.clock)
        return self.timeline_window_start, end


def checkpoint_dataset_path(checkpoint_path: str | Path) -> Path:
    """The dataset snapshot that lives next to a cursor checkpoint."""
    return Path(checkpoint_path).with_suffix(".npz")


def _fresh_cursor(world: World, config: CollectionConfig) -> CrawlCursor:
    return CrawlCursor(
        world_seed=world.config.seed,
        world_scale=world.config.scale,
        config_digest=config_digest(config),
        clock=config.clock,
        dataset_version=(
            dataset_version_for(config.clock) if config.clock is not None else None
        ),
        shard_seeds=shard_seed_digests(config),
    )


def collect_dataset(
    world: World, config: CollectionConfig | None = None
) -> MigrationDataset:
    """Run the full Section 3 pipeline against a simulated world."""
    dataset, _ = run_pipeline(world, config)
    return dataset


def run_pipeline(
    world: World,
    config: CollectionConfig | None = None,
    *,
    capture_state: bool = False,
    checkpoint_path: str | Path | None = None,
) -> tuple[MigrationDataset, CrawlCursor | None]:
    """Run the pipeline, optionally resumable and cursor-producing.

    With ``capture_state`` (or a ``checkpoint_path``), the run also builds
    a :class:`~repro.collection.cursor.CrawlCursor` recording the frontier
    state an incremental advance needs; the cursor is returned alongside
    the dataset (``None`` otherwise).

    With ``checkpoint_path``, the cursor plus a dataset snapshot are
    written after every completed stage.  If the path already holds a
    cursor, the run validates it against this world + config (raising
    :class:`~repro.errors.ResumeError` on any mismatch), reloads the
    snapshot and re-enters at the first incomplete stage — a resumed run
    is byte-identical to an uninterrupted one at every worker count,
    because shard work and fault streams are keyed by per-(stage, shard)
    derived seeds, not by wall progress.
    """
    config = config if config is not None else CollectionConfig()
    registry = obs.current()
    # request-budget burn-down: every 500 simulated requests drops one
    # ``counter`` event into the event stream (no-op when uninstrumented)
    registry.watch_default_counters()

    capture = capture_state or checkpoint_path is not None
    cursor: CrawlCursor | None = None
    dataset = MigrationDataset()
    done: set[str] = set()

    if checkpoint_path is not None and Path(checkpoint_path).exists():
        cursor = load_cursor(checkpoint_path)
        validate_cursor(cursor, world, config)
        if cursor.clock != config.clock:
            raise ResumeError(
                f"checkpoint clock {cursor.clock} does not match the "
                f"config clock {config.clock}"
            )
        dataset = load_npz_checkpoint(checkpoint_path)
        done = set(cursor.completed_stages)
    if cursor is None and capture:
        cursor = _fresh_cursor(world, config)
    state: CollectionState | None = cursor.state if cursor is not None else None

    tweet_hw = config.effective_tweet_window()[1].isoformat()
    timeline_hw = config.effective_timeline_window()[1].isoformat()

    def mark(stage: str, high_water: str) -> None:
        if cursor is None:
            return
        cursor.completed_stages.append(stage)
        cursor.high_water[stage] = high_water
        if checkpoint_path is not None:
            # snapshot first, cursor second: a cursor on disk always
            # describes a snapshot that exists
            from repro.collection.binfmt import save_npz

            save_npz(dataset, checkpoint_dataset_path(checkpoint_path))
            save_cursor(cursor, checkpoint_path)

    # The pipeline-level API handle only sizes the followee budget (pure
    # quota arithmetic); every simulated request is issued by a per-shard
    # client built inside the engine, so the whole fault/limiter state
    # lives at shard granularity regardless of worker count.
    api = world.twitter_api(faults=config.fault_plan, retry=config.retry_policy)

    collected: CollectedTweets | None = None

    with registry.span("collect_dataset") as run_span, ShardEngine(
        world, config
    ) as engine:
        # 1. instance index
        if "instance_list" not in done:
            with registry.span("collect.instance_list") as span:
                directory = world.directory()
                dataset.instance_domains = compile_instance_list(directory)
                span.annotate(domains=len(dataset.instance_domains))
            mark("instance_list", timeline_hw)

        # 2. migration tweets, sharded by query
        if "tweet_search" not in done:
            with registry.span("collect.tweet_search") as span:
                since, until = config.effective_tweet_window()
                collector = TweetCollector(api, since=since, until=until)
                queries = collector.build_queries(dataset.instance_domains)
                registry.counter("collection.tweet_search.queries").inc(
                    len(queries)
                )
                outcome = engine.map_stage(
                    "tweet_search",
                    "repro.collection.shards:tweet_search_shard",
                    queries,
                )
                collected = merge_collected(outcome.payloads)
                dataset.collected_tweets = collected.tweets
                dataset.collected_user_count = collected.user_count
                if state is not None:
                    state.users.update(collected.users)
                span.annotate(
                    tweets=collected.tweet_count,
                    users=collected.user_count,
                    shards=outcome.shards,
                )
            mark("tweet_search", tweet_hw)
        elif state is not None:
            # resumed past the search: rebuild the in-memory corpus view
            # from the snapshot + cursor (same tweet-id order as a merge)
            collected = CollectedTweets(
                tweets=list(dataset.collected_tweets), users=dict(state.users)
            )

        # 3. handle matching
        if "handle_matching" not in done:
            with registry.span("collect.handle_matching") as span:
                matcher = HandleMatcher(frozenset(dataset.instance_domains))
                matches = matcher.match_all(
                    collected.users, collected.tweets_by_author()
                )
                for user_id, match in sorted(matches.items()):
                    user = collected.users[user_id]
                    dataset.matched[user_id] = MatchedUser(
                        twitter_user_id=user_id,
                        twitter_username=user.username,
                        mastodon_acct=match.mastodon_acct,
                        matched_via=match.matched_via,
                        verified=user.verified,
                        twitter_created_at=user.created_at,
                        twitter_followers=user.followers_count,
                        twitter_following=user.following_count,
                    )
                span.annotate(matched=len(dataset.matched))
            mark("handle_matching", tweet_hw)

        matched_list = dataset.matched_users()

        # 4. timelines, sharded by matched user
        if "timelines" not in done:
            with registry.span("collect.timelines") as span:
                with registry.span("collect.timelines.twitter"):
                    outcome = engine.map_stage(
                        "timelines.twitter",
                        "repro.collection.shards:twitter_timelines_shard",
                        matched_list,
                    )
                    coverage = CrawlCoverage()
                    for part_timelines, part_coverage, part_buckets in (
                        outcome.payloads
                    ):
                        dataset.twitter_timelines.update(part_timelines)
                        coverage = coverage.merge(part_coverage)
                        if state is not None:
                            state.twitter_buckets.update(part_buckets)
                    dataset.twitter_coverage = coverage
                    finalize_timeline_metrics("twitter", coverage)
                with registry.span("collect.timelines.mastodon"):
                    outcome = engine.map_stage(
                        "timelines.mastodon",
                        "repro.collection.shards:mastodon_timelines_shard",
                        matched_list,
                    )
                    coverage = CrawlCoverage()
                    for accounts, part_timelines, part_coverage, part_buckets in (
                        outcome.payloads
                    ):
                        dataset.accounts.update(accounts)
                        dataset.mastodon_timelines.update(part_timelines)
                        coverage = coverage.merge(part_coverage)
                        if state is not None:
                            state.mastodon_buckets.update(part_buckets)
                    dataset.mastodon_coverage = coverage
                    finalize_timeline_metrics("mastodon", coverage)
                span.annotate(
                    twitter_ok=dataset.twitter_coverage.ok,
                    mastodon_ok=dataset.mastodon_coverage.ok,
                )
            mark("timelines", timeline_hw)

        # 5. followee sample (budget first, stratification second),
        #    sharded by sampled user
        if "followees" not in done:
            with registry.span("collect.followees") as span:
                fraction = budgeted_fraction(
                    api, len(matched_list), default=config.followee_sample_fraction
                )
                rng = np.random.default_rng(config.sampler_seed)
                sample = stratified_sample(matched_list, fraction, rng)
                # The switching analysis (Fig. 10) needs followee data for
                # switchers; at paper scale the 10% sample contains hundreds of
                # them, at simulation scale it would contain almost none, so
                # every observed switcher is added to the crawl (a few extra
                # users, well within budget).
                sampled_ids = {u.twitter_user_id for u in sample}
                for uid in dataset.switchers():
                    if uid not in sampled_ids and uid in dataset.matched:
                        sample.append(dataset.matched[uid])
                sample.sort(key=lambda u: u.twitter_user_id)
                current_accts = {
                    uid: record.moved_to
                    for uid, record in dataset.accounts.items()
                    if record.moved_to is not None
                }
                pairs = [
                    (
                        user,
                        current_accts.get(user.twitter_user_id, user.mastodon_acct),
                    )
                    for user in sample
                ]
                outcome = engine.map_stage(
                    "followees", "repro.collection.shards:followees_shard", pairs
                )
                for part_records, part_attempted in outcome.payloads:
                    dataset.followee_sample.update(part_records)
                    if state is not None:
                        state.followee_attempted.update(part_attempted)
                span.annotate(
                    fraction=fraction,
                    sampled=len(sample),
                    crawled=len(dataset.followee_sample),
                )
            mark("followees", timeline_hw)

        # 6. weekly activity over every instance hosting a matched account,
        #    sharded by domain
        if "weekly_activity" not in done:
            with registry.span("collect.weekly_activity") as span:
                domains = sorted(
                    {u.mastodon_domain for u in matched_list}
                    | {
                        record.second_domain
                        for record in dataset.accounts.values()
                        if record.second_domain is not None
                    }
                )
                outcome = engine.map_stage(
                    "weekly_activity",
                    "repro.collection.shards:weekly_activity_shard",
                    domains,
                )
                failed_domains: list[str] = []
                for part_activity, part_failed in outcome.payloads:
                    dataset.weekly_activity.update(part_activity)
                    failed_domains.extend(part_failed)
                if config.clock is not None:
                    # an instance only reports a week once it has fully
                    # elapsed: keep rows whose Sunday is on or before today
                    horizon = config.clock - _dt.timedelta(days=6)
                    dataset.weekly_activity = {
                        domain: [
                            row
                            for row in rows
                            if week_label_start(row["week"]) <= horizon
                        ]
                        for domain, rows in dataset.weekly_activity.items()
                    }
                span.annotate(domains=len(domains), failed=len(failed_domains))
            mark("weekly_activity", timeline_hw)

        # 7. search-interest series (Figure 1's external data pull).
        #    TrendsService draws from the world RNG per call (stateful
        #    across collections), so this stage stays serial in the main
        #    process by design.  A clocked collection rewinds the noise
        #    stream first, so pulling again at a later clock reproduces
        #    the earlier series as a prefix; unclocked collections keep
        #    the legacy cumulative stream (golden digests pin it).
        if "trends" not in done:
            with registry.span("collect.trends") as span:
                if config.clock is not None:
                    world.trends.reset()
                until = config.effective_timeline_window()[1]
                for term in world.trends.supported_terms():
                    series = world.trends.interest_over_time(
                        term, _dt.date(2022, 9, 1), until
                    )
                    dataset.trends[term] = [
                        (day.isoformat(), value) for day, value in series
                    ]
                span.annotate(terms=len(dataset.trends))
            if config.clock is not None:
                dataset.dataset_version = dataset_version_for(config.clock)
                dataset.clock = config.clock
            mark("trends", timeline_hw)

        run_span.annotate(matched=dataset.migrant_count)
        run_span.annotate(parallel=engine.virtual_report())
        if config.fault_plan.active:
            run_span.annotate(faults_injected=engine.injected_total)

    return dataset, cursor


def load_npz_checkpoint(checkpoint_path: str | Path) -> MigrationDataset:
    """Load the dataset snapshot that belongs to a cursor checkpoint."""
    from repro.collection.binfmt import load_npz

    snapshot = checkpoint_dataset_path(checkpoint_path)
    if not snapshot.exists():
        raise ResumeError(
            f"cursor at {checkpoint_path} has no dataset snapshot "
            f"({snapshot} is missing)"
        )
    return load_npz(snapshot)
