"""Chrome/Perfetto trace-event export: the run as a swimlane timeline.

Converts a registry's span tree (now timestamped, see
:mod:`repro.obs.spans`) plus its event stream into the Chrome trace-event
JSON format that ``chrome://tracing`` and https://ui.perfetto.dev consume:

- every span becomes a complete (``"ph": "X"``) event with microsecond
  start/duration;
- spans are assigned to **lanes** (``tid``): the main pipeline runs in lane
  0, and every ``collect.<stage>.shard`` span adopted from a shard tracer
  (see :meth:`repro.obs.spans.Tracer.adopt`) gets one lane per
  ``(stage, shard)`` — so the parallel crawl renders as a real swimlane
  timeline instead of a flattened tree;
- heartbeat events become instant (``"i"``) marks and watched-counter
  crossings become counter (``"C"``) tracks;
- lane names are declared through metadata (``"M"``) events.

Timestamps are rebased to the earliest span/event in the trace (epoch
clocks agree across ``fork`` children, so shard lanes line up with the
stage that spawned them).  Spans that never recorded timestamps (e.g.
hand-built trees from older exports) are skipped, not invented.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.events import EVENT_KINDS

#: ``ph`` values the exporter produces (validation checks membership).
_PHASES = ("X", "M", "i", "C")

_MAIN_LANE = 0
_PID = 1


def _shard_lane_key(span) -> tuple[str, int] | None:
    """``(stage, shard)`` when ``span`` is a shard root, else ``None``."""
    shard = span.meta.get("shard")
    if shard is None or not span.name.endswith(".shard"):
        return None
    stage = span.meta.get("stage")
    if not isinstance(stage, str):
        # collect.<stage>.shard
        stage = span.name
        if stage.startswith("collect."):
            stage = stage[len("collect.") :]
        if stage.endswith(".shard"):
            stage = stage[: -len(".shard")]
    return (str(stage), int(shard))


def _span_args(span) -> dict:
    args: dict[str, object] = {
        "wall_seconds": span.wall_seconds,
        "wait_seconds": span.wait_seconds,
        "api_requests": span.api_requests,
    }
    args.update(span.memory_fields())
    if span.error is not None:
        args["error"] = span.error
    for key, value in span.meta.items():
        args.setdefault(key, value)
    return args


def trace_events(registry) -> list[dict]:
    """The registry as a flat list of Chrome trace events (``ts``-sorted)."""
    lanes: dict[tuple[str, int], int] = {}
    rows: list[tuple[float, dict]] = []

    def lane_for(key: tuple[str, int]) -> int:
        tid = lanes.get(key)
        if tid is None:
            tid = lanes[key] = len(lanes) + 1
        return tid

    def visit(span, tid: int) -> None:
        key = _shard_lane_key(span)
        if key is not None:
            tid = lane_for(key)
        if span.start_epoch is not None:
            rows.append(
                (
                    span.start_epoch,
                    {
                        "name": span.name,
                        "cat": "span",
                        "ph": "X",
                        "pid": _PID,
                        "tid": tid,
                        "ts": span.start_epoch,
                        "dur": max(span.wall_seconds, 0.0) * 1e6,
                        "args": _span_args(span),
                    },
                )
            )
        for child in span.children:
            visit(child, tid)

    for root in registry.tracer.roots:
        visit(root, _MAIN_LANE)

    events = getattr(registry, "events", None)
    if events is not None:
        for event in events.events:
            if event["kind"] in ("span_open", "span_close"):
                continue  # spans already render as complete events
            if event["kind"] == "counter":
                rows.append(
                    (
                        event["ts"],
                        {
                            "name": event["name"],
                            "cat": "counter",
                            "ph": "C",
                            "pid": _PID,
                            "ts": event["ts"],
                            "args": {"value": event["fields"].get("value", 0)},
                        },
                    )
                )
            else:
                rows.append(
                    (
                        event["ts"],
                        {
                            "name": event["name"],
                            "cat": event["kind"],
                            "ph": "i",
                            "pid": _PID,
                            "tid": _MAIN_LANE,
                            "ts": event["ts"],
                            "s": "g",
                            "args": dict(event["fields"]),
                        },
                    )
                )

    if not rows:
        return []

    t0 = min(ts for ts, _ in rows)
    out: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _MAIN_LANE,
            "args": {"name": "repro pipeline"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _MAIN_LANE,
            "args": {"name": "main"},
        },
    ]
    for (stage, shard), tid in sorted(lanes.items(), key=lambda kv: kv[1]):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": f"{stage} / shard {shard}"},
            }
        )
    rows.sort(key=lambda pair: pair[0])
    for ts, event in rows:
        event["ts"] = (ts - t0) * 1e6
        out.append(event)
    return out


def chrome_trace(registry) -> dict:
    """The full trace document (``traceEvents`` plus display hints)."""
    return {
        "traceEvents": trace_events(registry),
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.traceexport"},
    }


def write_chrome_trace(registry, path: str | Path) -> dict:
    """Write the trace-event JSON to ``path``; returns the document."""
    doc = chrome_trace(registry)
    Path(path).write_text(json.dumps(doc, indent=1, default=str) + "\n")
    return doc


def validate_chrome_trace(doc: dict) -> dict:
    """Schema-check an exported trace; returns summary stats.

    Raises :class:`ValueError` on any malformed event.  Used by tests and
    the obs-smoke CI job.  Checks: the ``traceEvents`` envelope, required
    per-event keys, known phases, numeric non-negative timestamps, and that
    each lane's complete events are monotonically ordered by ``ts``.
    """
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError("trace document must carry a traceEvents list")
    lanes: dict[int, float] = {}
    counts = {"X": 0, "M": 0, "i": 0, "C": 0}
    for event in doc["traceEvents"]:
        ph = event.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"unknown phase {ph!r} in {event!r}")
        if not isinstance(event.get("name"), str) or event.get("pid") is None:
            raise ValueError(f"event missing name/pid: {event!r}")
        counts[ph] += 1
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event has bad ts: {event!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"complete event has bad dur: {event!r}")
            tid = event.get("tid")
            if tid is None:
                raise ValueError(f"complete event has no lane: {event!r}")
            if ts < lanes.get(tid, 0.0):
                raise ValueError(f"lane {tid} is not ts-monotonic at {event!r}")
            lanes[tid] = ts
        if ph == "i" and event.get("cat") not in EVENT_KINDS:
            raise ValueError(f"instant event with unknown category: {event!r}")
    return {
        "events": len(doc["traceEvents"]),
        "spans": counts["X"],
        "instants": counts["i"],
        "counters": counts["C"],
        "lanes": len(lanes),
    }
