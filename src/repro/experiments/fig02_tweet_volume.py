"""Figure 2: daily volume of migration-related tweets.

Paper shape: low volume on Oct 26, an explosion at the takeover (Oct 27-28),
decay afterwards with bumps at the layoffs (Nov 04) and ultimatum (Nov 17).
"""

from __future__ import annotations

from repro.analysis.activity import collected_tweet_volume
from repro.collection.dataset import MigrationDataset
from repro.experiments.registry import ExperimentResult
from repro.util.clock import TAKEOVER_DATE

EXP_ID = "F2"
TITLE = "Temporal distribution of migration-related tweets"


def run(dataset: MigrationDataset) -> ExperimentResult:
    volume = collected_tweet_volume(dataset)
    rows = [(day.isoformat(), count) for day, count in volume.per_day]
    pre = sum(c for d, c in volume.per_day if d < TAKEOVER_DATE)
    post = volume.total - pre
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["day", "tweets"],
        rows=rows,
        notes={
            "total_tweets": float(volume.total),
            "peak_day_of_year": float(volume.peak_day.timetuple().tm_yday),
            "post_takeover_share_pct": 100.0 * post / max(1, volume.total),
        },
    )
