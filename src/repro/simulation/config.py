"""Simulation configuration.

Every behavioural constant of the simulator lives here, annotated with the
paper statistic it is calibrated against.  ``scale`` shrinks the population
(1.0 would be the paper's 136,009 matched migrants); all *fractions* are
scale-invariant, so the analyses reproduce the paper's shapes at any scale.

:class:`SimConfig` is the one object ``build_world`` and the experiment
runner accept; the ``#:`` doc comments above each field double as the
runner's ``--world-<field>`` flag help (:func:`field_docs` parses them).
"""

from __future__ import annotations

import datetime as _dt
import inspect
import re
from dataclasses import dataclass, field, fields

from repro.errors import ConfigError
from repro.util.clock import SIM_END, SIM_START

#: The paper's matched-migrant count; ``scale`` multiplies this.
PAPER_MIGRANTS = 136_009


@dataclass(frozen=True)
class SimConfig:
    """All knobs of the world generator.

    The defaults reproduce the paper's aggregate statistics at any ``scale``;
    individual studies (and the ablation benchmarks) override single fields.
    """

    seed: int = 7
    #: Fraction of the paper's population to simulate (0.01 -> ~1,360 migrants).
    scale: float = 0.01

    # -- window ---------------------------------------------------------------
    start: _dt.date = SIM_START
    end: _dt.date = SIM_END

    # -- population sizes -------------------------------------------------------
    #: Candidate migrants per eventual migrant (the contagion model decides who
    #: actually moves; roughly 40% of candidates end up migrating).
    at_risk_multiplier: float = 1.7
    #: General Twitter population per eventual migrant (edge targets; their
    #: migrated-followee fraction anchor the ~5.99% statistic of Fig. 8).
    population_multiplier: float = 16.0
    #: High in-degree "hub" accounts per 1000 population.
    hubs_per_thousand: float = 4.0
    #: Users who tweet migration keywords without migrating, per migrant
    #: (the paper saw 1.02M distinct keyword-tweeters vs 136k matched).
    chatter_multiplier: float = 3.0

    # -- Twitter graph ------------------------------------------------------------
    #: Median followee-list length for tracked users.  The paper's median is
    #: 787 at full scale; the default scales it down so small worlds stay
    #: connected without quadratic edge counts.
    twitter_median_followees: int = 180
    twitter_followees_sigma: float = 0.85
    #: Share of a followee list pointing at hub accounts.
    hub_followee_share: float = 0.18
    #: Share pointing at other candidate migrants (assortativity; drives the
    #: migrated-followee fraction toward ~6%).
    at_risk_followee_share: float = 0.10
    #: Median profile followers count (paper: 744) relative to followees.
    follower_to_followee_ratio: float = 0.95
    #: Legacy-verified share of migrants (paper: 4%).
    verified_fraction: float = 0.04
    #: Median Twitter account age in years (paper: 11.5).
    median_account_age_years: float = 11.5

    # -- fediverse -----------------------------------------------------------------
    #: Directory size (paper: 15,886 domains), scaled.
    directory_instances: int = 200
    #: Minimum directory size regardless of scale.
    min_directory_instances: int = 60
    #: Zipf exponent for instance attractiveness (drives the ~96%-on-top-25%
    #: concentration of Fig. 5).
    instance_zipf_exponent: float = 2.1
    #: Share of (synthetic long-tail) instances running Pleroma instead of
    #: Mastodon; they federate identically via ActivityPub (paper, §2).
    pleroma_fraction: float = 0.12
    #: Migrants with a Mastodon account predating the takeover (paper: 21%).
    pre_takeover_account_fraction: float = 0.23
    #: Migrants reusing their Twitter username on Mastodon.  Measured over
    #: *matched* users this lands at the paper's 72%: tweet-text matches are
    #: same-username by construction, so the population rate sits lower.
    same_username_fraction: float = 0.64

    # -- migration decision -----------------------------------------------------------
    #: Daily base hazard for candidates while the event intensity is at its
    #: post-takeover peak.
    base_daily_hazard: float = 0.16
    #: Multiplier applied to the hazard per unit migrated-followee fraction
    #: (the social-contagion term; ablated by setting it to 0).
    contagion_weight: float = 6.0
    #: Weight of the per-user ideology draw in the hazard.
    ideology_weight: float = 1.0

    # -- instance choice ----------------------------------------------------------------
    #: Probability of copying a migrated followee's instance (drives the
    #: ~14.72% same-instance statistic; ablated by setting it to 0).
    choice_social_weight: float = 0.38
    #: Probability of preferential attachment to large/flagship instances.
    choice_flagship_weight: float = 0.51
    #: Probability of picking an instance matching the user's main topic.
    choice_topic_weight: float = 0.108
    #: Remaining mass: uniform choice over the directory.
    #: (computed as 1 - social - flagship - topic)
    #: Probability that a highly active user self-hosts a brand-new
    #: single-user instance (Fig. 6's 13.16% single-user instances).
    self_host_probability: float = 0.012

    # -- switching ------------------------------------------------------------------------
    #: Daily probability scale for instance switches (paper: 4.09% of users
    #: switch overall, 97.22% of switches post-takeover).
    switch_daily_scale: float = 0.00055
    #: How strongly the migrated-followee concentration on another instance
    #: pulls a switch (Fig. 10's 46.98% vs 11.4% contrast).
    switch_social_pull: float = 8.0

    # -- posting behaviour ---------------------------------------------------------------
    #: Mean tweets/day across migrants (paper: ~2.0 over the window).
    tweet_rate_mean: float = 1.9
    #: Mean statuses/day for migrated users once on Mastodon (~1.5).
    status_rate_mean: float = 1.5
    #: Boosts (reblogs) as a fraction of a user's Mastodon posting volume.
    boost_rate: float = 0.12
    #: Migrants who never post a status (paper: 9.20% had none).
    lurker_fraction: float = 0.092
    #: Migrants who never import their follow list (no Mastodon followees;
    #: the paper finds 3.6% following nobody).
    no_rewire_fraction: float = 0.02
    #: Migrants whose new account is effectively undiscoverable, so nobody
    #: follows them back (the paper's 6.01% with no Mastodon followers).
    undiscoverable_fraction: float = 0.06
    #: Activity boost on single-user instances (Fig. 6: +121% statuses).
    self_host_activity_boost: float = 3.2
    #: Users adopting a cross-poster at least once (paper: 5.73%).
    crossposter_fraction: float = 0.065
    #: Fraction of a cross-poster user's statuses that are mirrored.
    crosspost_mirror_rate: float = 0.30
    #: Users who paraphrase tweets on Mastodon (the ~15.5% of users whose
    #: content is "similar" across platforms, Fig. 14).
    paraphraser_fraction: float = 0.18
    paraphrase_rate: float = 1.0

    # -- toxicity ----------------------------------------------------------------------------
    #: Mean per-user toxic-tweet probability (paper: 4.02% per user,
    #: 5.49% of all tweets).
    twitter_toxicity_mean: float = 0.036
    #: Mean per-user toxic-status probability (paper: 2.07% per user,
    #: 2.80% of statuses).
    mastodon_toxicity_mean: float = 0.018
    #: Dispersion of per-user toxicity (Beta distribution pseudo-count).
    toxicity_concentration: float = 0.30

    # -- federation moderation -----------------------------------------------------------------
    #: Share of instances whose admins run an MRF-style keyword filter
    #: against the toxic lexicon (federated statuses only; the paper's
    #: moderation discussion, §6.3).
    moderated_instance_fraction: float = 0.3

    # -- crawl-time failure injection ----------------------------------------------------------
    suspended_fraction: float = 0.0008  # paper: 0.08%
    deactivated_fraction: float = 0.020  # paper: 2.26%
    protected_fraction: float = 0.0278  # paper: 2.78%
    instance_down_fraction: float = 0.115  # paper: 11.58% of timelines lost

    # -- announcement behaviour ------------------------------------------------------------------
    #: How migrants advertise the Mastodon account: profile bio vs. tweet.
    announce_bio_fraction: float = 0.62
    #: Of tweet announcements, share using the @user@domain form (vs URL).
    announce_acct_style_fraction: float = 0.55

    # -- background fediverse load (aggregate counters for Fig. 3) -------------------------------
    #: Unmatched registrations per matched migrant after the takeover
    #: (Mastodon reported 1M+ sign-ups vs the paper's 136k matches).
    background_registration_multiplier: float = 6.0
    background_statuses_per_login: float = 2.4

    extras: dict = field(default_factory=dict)

    # -- derived ------------------------------------------------------------------

    @property
    def target_migrants(self) -> int:
        return max(40, int(round(PAPER_MIGRANTS * self.scale)))

    @property
    def n_at_risk(self) -> int:
        return int(round(self.target_migrants * self.at_risk_multiplier))

    @property
    def n_population(self) -> int:
        return int(round(self.target_migrants * self.population_multiplier))

    @property
    def n_hubs(self) -> int:
        return max(10, int(round(self.n_population * self.hubs_per_thousand / 1000)))

    @property
    def n_chatter(self) -> int:
        return int(round(self.target_migrants * self.chatter_multiplier))

    @property
    def n_directory_instances(self) -> int:
        # sublinear growth: the real directory (15,886 domains) is much
        # larger than the set of instances migrants actually touch (2,879)
        scaled = int(round(self.directory_instances * max((self.scale / 0.01) ** 0.5, 1.0)))
        return max(self.min_directory_instances, scaled)

    @property
    def choice_random_weight(self) -> float:
        used = (
            self.choice_social_weight
            + self.choice_flagship_weight
            + self.choice_topic_weight
        )
        return 1.0 - used

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent settings."""
        if self.scale <= 0:
            raise ConfigError("scale must be positive")
        if self.end < self.start:
            raise ConfigError("end precedes start")
        if self.choice_random_weight < -1e-9:
            raise ConfigError("instance-choice weights exceed 1")
        fractions = {
            "verified_fraction": self.verified_fraction,
            "pre_takeover_account_fraction": self.pre_takeover_account_fraction,
            "same_username_fraction": self.same_username_fraction,
            "lurker_fraction": self.lurker_fraction,
            "crossposter_fraction": self.crossposter_fraction,
            "paraphraser_fraction": self.paraphraser_fraction,
            "suspended_fraction": self.suspended_fraction,
            "deactivated_fraction": self.deactivated_fraction,
            "protected_fraction": self.protected_fraction,
            "instance_down_fraction": self.instance_down_fraction,
            "announce_bio_fraction": self.announce_bio_fraction,
            "announce_acct_style_fraction": self.announce_acct_style_fraction,
        }
        for name, value in fractions.items():
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.twitter_median_followees < 1:
            raise ConfigError("twitter_median_followees must be >= 1")
        if self.tweet_rate_mean < 0 or self.status_rate_mean < 0:
            raise ConfigError("posting rates must be non-negative")


#: Deprecated alias for :class:`SimConfig` (the pre-redesign name).
WorldConfig = SimConfig

_FIELD_DOC_CACHE: dict[str, str] | None = None


def field_docs() -> dict[str, str]:
    """Field name -> one-line description, parsed from the ``#:`` comments.

    Fields without a doc comment map to an empty string.  The runner uses
    this to generate ``--world-<field>`` flag help, so the config source is
    the single place behavioural knobs are documented.
    """
    global _FIELD_DOC_CACHE
    if _FIELD_DOC_CACHE is None:
        docs: dict[str, str] = {}
        pending: list[str] = []
        assign = re.compile(r"^(\w+)\s*(?::[^=]+)?=")
        for raw in inspect.getsource(SimConfig).splitlines():
            line = raw.strip()
            if line.startswith("#:"):
                pending.append(line[2:].strip())
            elif line.startswith("#") or not line:
                continue
            else:
                match = assign.match(line)
                if match and pending:
                    text = " ".join(pending)
                    docs[match.group(1)] = re.sub(r"\s+", " ", text)
                pending = []
        _FIELD_DOC_CACHE = {
            f.name: docs.get(f.name, "") for f in fields(SimConfig)
        }
    return _FIELD_DOC_CACHE
