"""Figure 14: identical/similar content across the two platforms.

Paper shape: on average 1.53% of a user's statuses are identical to tweets
and 16.57% similar (cosine > 0.7); 84.45% of users post completely
different content on each platform.
"""

from __future__ import annotations

from repro.analysis.content import content_similarity
from repro.collection.dataset import MigrationDataset
from repro.experiments.registry import ExperimentResult

EXP_ID = "F14"
TITLE = "Per-user fraction of Mastodon statuses identical/similar to tweets"

CDF_POINTS = (0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0)


def run(dataset: MigrationDataset) -> ExperimentResult:
    result = content_similarity(dataset)
    rows = []
    for x in CDF_POINTS:
        rows.append(
            (
                f"frac<={x:.2f}",
                result.identical_fraction.evaluate(x),
                result.similar_fraction.evaluate(x),
            )
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["x", "P(identical<=x)", "P(similar<=x)"],
        rows=rows,
        notes={
            "mean_pct_identical": result.mean_pct_identical,
            "mean_pct_similar": result.mean_pct_similar,
            "pct_users_all_different": result.pct_users_all_different,
            "user_count": float(result.user_count),
        },
    )
