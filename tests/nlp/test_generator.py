"""Tests for repro.nlp.generator."""

import numpy as np
import pytest

from repro.nlp.generator import PostGenerator
from repro.nlp.toxicity import PerspectiveScorer
from repro.nlp.vocabulary import TOPICS
from repro.util.text import extract_hashtags


@pytest.fixture
def generator():
    return PostGenerator(np.random.default_rng(42))


class TestGenerate:
    def test_deterministic_given_rng(self):
        a = PostGenerator(np.random.default_rng(1)).generate(TOPICS[0])
        b = PostGenerator(np.random.default_rng(1)).generate(TOPICS[0])
        assert a == b

    def test_uses_topic_words(self, generator):
        topic = generator.vocabulary.topic("tech")
        text = generator.generate(topic, hashtag_prob=0.0)
        words = set(text.lower().split())
        assert words & set(topic.words)

    def test_toxic_posts_cross_threshold(self, generator):
        scorer = PerspectiveScorer()
        topic = TOPICS[0]
        scores = [
            scorer.score(generator.generate(topic, toxic=True)) for _ in range(50)
        ]
        assert sum(s > 0.5 for s in scores) >= 45  # nearly all cross 0.5

    def test_clean_posts_stay_low(self, generator):
        scorer = PerspectiveScorer()
        topic = TOPICS[0]
        scores = [scorer.score(generator.generate(topic)) for _ in range(50)]
        assert max(scores) < 0.5

    def test_migration_mention_adds_tag(self, generator):
        topic = generator.vocabulary.topic("tech")
        text = generator.generate(topic, hashtag_prob=0.0, mention_migration=True)
        tags = extract_hashtags(text)
        fediverse_tags = set(generator.vocabulary.topic("fediverse").hashtags)
        assert set(tags) & fediverse_tags

    def test_pick_topic_respects_mixture(self, generator):
        mixture = np.zeros(len(TOPICS))
        mixture[3] = 1.0
        assert generator.pick_topic(mixture) is TOPICS[3]

    def test_pick_topic_validates_length(self, generator):
        with pytest.raises(ValueError):
            generator.pick_topic(np.array([1.0]))


class TestAnnouncements:
    def test_acct_style(self, generator):
        text = generator.migration_announcement("alice@mastodon.social", "acct")
        assert "@alice@mastodon.social" in text

    def test_url_style(self, generator):
        text = generator.migration_announcement("alice@mastodon.social", "url")
        assert "https://mastodon.social/@alice" in text

    def test_unknown_style(self, generator):
        with pytest.raises(ValueError):
            generator.migration_announcement("alice@mastodon.social", "carrier-pigeon")

    def test_announcements_carry_migration_signal(self, generator):
        """Every template must be findable by the §3.1 keyword search."""
        from repro.twitter.search import MIGRATION_HASHTAGS, MIGRATION_KEYWORDS

        keywords = [k.lower() for k in MIGRATION_KEYWORDS]
        tags = {t.lower() for t in MIGRATION_HASHTAGS}
        for _ in range(40):
            text = generator.migration_announcement("bob@x.social", "acct").lower()
            tag_hit = {t.lower() for t in extract_hashtags(text)} & tags
            keyword_hit = any(k in text for k in keywords)
            assert tag_hit or keyword_hit


class TestProfileBio:
    def test_bio_embeds_handle(self, generator):
        topic = generator.vocabulary.topic("art")
        bio = generator.profile_bio(topic, mastodon_handle="zoe@art.school")
        assert "@zoe@art.school" in bio

    def test_bio_without_handle(self, generator):
        topic = generator.vocabulary.topic("art")
        assert "@" not in generator.profile_bio(topic)
