"""Request accounting for the simulated Twitter APIs.

The paper's followee crawl was constrained by the Follows API rate limit
(15 requests / 15 minutes per app at the time), which is why only a 10%
subsample of migrated users could be crawled (Section 3.3).  The simulator
reproduces that constraint as a *request budget*: each endpoint has a
per-window quota, the limiter tracks virtual time, and a crawl that would
exceed the total budget available in the study window must sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.twitter.errors import RateLimitExceeded


@dataclass
class EndpointLimit:
    """Quota for one endpoint: ``requests`` per ``window_seconds``."""

    requests: int
    window_seconds: int

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("quota must allow at least one request")
        if self.window_seconds < 1:
            raise ValueError("window must be at least one second")


#: Historical quotas for the endpoints the pipeline uses.
DEFAULT_LIMITS: dict[str, EndpointLimit] = {
    "search": EndpointLimit(requests=300, window_seconds=900),
    "following": EndpointLimit(requests=15, window_seconds=900),
    "users": EndpointLimit(requests=900, window_seconds=900),
}


@dataclass
class _WindowState:
    window_start: int = 0
    used: int = 0


class RateLimiter:
    """Sliding-window request limiter over virtual time.

    ``clock_seconds`` is virtual: callers either let :meth:`acquire` raise
    :class:`RateLimitExceeded` and advance time themselves, or call
    :meth:`acquire` with ``wait=True`` to auto-advance to the next window
    (accumulating :attr:`waited_seconds`, the crawl's simulated wall time).
    """

    def __init__(self, limits: dict[str, EndpointLimit] | None = None) -> None:
        self._limits = dict(DEFAULT_LIMITS if limits is None else limits)
        self._state: dict[str, _WindowState] = {}
        self.clock_seconds = 0
        self.waited_seconds = 0
        self.request_counts: dict[str, int] = {}

    def limit_for(self, endpoint: str) -> EndpointLimit:
        try:
            return self._limits[endpoint]
        except KeyError:
            raise KeyError(f"unknown endpoint {endpoint!r}") from None

    def advance(self, seconds: int) -> None:
        """Move virtual time forward."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self.clock_seconds += seconds

    def acquire(self, endpoint: str, wait: bool = False) -> None:
        """Consume one request from ``endpoint``'s current window.

        With ``wait=False`` a depleted window raises :class:`RateLimitExceeded`
        carrying the seconds until reset.  With ``wait=True`` virtual time
        jumps to the next window instead and the wait is recorded.
        """
        registry = obs.current()
        limit = self.limit_for(endpoint)
        state = self._state.setdefault(endpoint, _WindowState())
        if self.clock_seconds - state.window_start >= limit.window_seconds:
            state.window_start = self.clock_seconds
            state.used = 0
            registry.counter(
                "twitter.ratelimit.window_rollovers", endpoint=endpoint
            ).inc()
        if state.used >= limit.requests:
            retry_after = state.window_start + limit.window_seconds - self.clock_seconds
            if not wait:
                raise RateLimitExceeded(endpoint, retry_after)
            self.advance(retry_after)
            self.waited_seconds += retry_after
            state.window_start = self.clock_seconds
            state.used = 0
            registry.counter(
                "twitter.ratelimit.wait_seconds", endpoint=endpoint
            ).inc(retry_after)
            registry.counter(
                "twitter.ratelimit.window_rollovers", endpoint=endpoint
            ).inc()
        state.used += 1
        self.request_counts[endpoint] = self.request_counts.get(endpoint, 0) + 1
        registry.counter("twitter.ratelimit.requests", endpoint=endpoint).inc()

    def max_requests_within(self, endpoint: str, seconds: int) -> int:
        """How many requests the quota allows inside ``seconds`` of wall time.

        This is what a crawler uses to size a sample before starting: e.g.
        the following endpoint allows 15 requests / 900s, so a 14-day crawl
        supports at most ``15 * (14*86400 / 900)`` requests.
        """
        limit = self.limit_for(endpoint)
        windows = max(1, seconds // limit.window_seconds)
        return limit.requests * windows
