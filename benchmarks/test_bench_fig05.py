"""Benchmark: regenerate User-share concentration curve (Figure 5).

Measures the analysis cost of the figure on the shared benchmark dataset
and asserts the paper's qualitative shape holds.
"""

from repro.experiments.registry import get_experiment


def test_bench_fig05(benchmark, bench_dataset):
    result = benchmark(get_experiment("F5"), bench_dataset)
    assert result.notes["share_top_25pct"] > 70.0
