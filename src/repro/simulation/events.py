"""The event timeline driving migration pressure.

The paper ties migration waves to three events: the takeover (Oct 27), the
layoffs (Nov 04) and the "extremely hardcore" ultimatum resignations
(Nov 17).  The timeline turns those into a daily *intensity* in [0, 1]:
near zero before the takeover, spiking at each event, decaying geometrically
between them.  Figure 2's tweet-volume curve and the migration hazard both
follow this intensity.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from repro.util.clock import LAYOFFS_DATE, TAKEOVER_DATE, ULTIMATUM_DATE, date_range


@dataclass(frozen=True)
class Shock:
    """One news event: a spike of the given magnitude decaying at ``decay``/day."""

    day: _dt.date
    magnitude: float
    decay: float = 0.82
    label: str = ""

    def intensity_on(self, when: _dt.date) -> float:
        """This shock's contribution on ``when`` (zero before the event)."""
        offset = (when - self.day).days
        if offset < 0:
            return 0.0
        return self.magnitude * (self.decay**offset)


#: The three paper events plus the pre-takeover rumour period.
DEFAULT_SHOCKS: tuple[Shock, ...] = (
    Shock(day=TAKEOVER_DATE - _dt.timedelta(days=1), magnitude=0.12, decay=0.5,
          label="deal-closing rumours"),
    Shock(day=TAKEOVER_DATE, magnitude=1.0, label="Musk takeover"),
    Shock(day=LAYOFFS_DATE, magnitude=0.26, label="mass layoffs"),
    Shock(day=ULTIMATUM_DATE, magnitude=0.30, label="hardcore ultimatum"),
)


class EventTimeline:
    """Daily migration-pressure intensity over the study window."""

    def __init__(
        self,
        shocks: tuple[Shock, ...] = DEFAULT_SHOCKS,
        baseline: float = 0.006,
    ) -> None:
        if baseline < 0:
            raise ValueError("baseline must be non-negative")
        self._shocks = shocks
        self._baseline = baseline

    @property
    def shocks(self) -> tuple[Shock, ...]:
        return self._shocks

    def intensity(self, day: _dt.date) -> float:
        """Total intensity on ``day``, clipped to [0, 1]."""
        total = self._baseline + sum(s.intensity_on(day) for s in self._shocks)
        return min(1.0, total)

    def series(self, start: _dt.date, end: _dt.date) -> list[tuple[_dt.date, float]]:
        """The intensity for every day in ``[start, end]``."""
        return [(day, self.intensity(day)) for day in date_range(start, end)]

    def peak_day(self, start: _dt.date, end: _dt.date) -> _dt.date:
        """The day of maximum intensity in the window."""
        series = self.series(start, end)
        return max(series, key=lambda pair: pair[1])[0]
