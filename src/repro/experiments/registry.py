"""Experiment registry: figure id -> runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.collection.dataset import MigrationDataset


@dataclass
class ExperimentResult:
    """One regenerated figure: printable rows plus headline scalars."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[tuple]
    notes: dict[str, float] = field(default_factory=dict)

    def format(self, max_rows: int = 40) -> str:
        """Render as an aligned text table."""
        widths = [len(h) for h in self.headers]
        printable = [tuple(_cell(v) for v in row) for row in self.rows[:max_rows]]
        for row in printable:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.exp_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        for row in printable:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        if self.notes:
            lines.append("notes:")
            for key, value in self.notes.items():
                lines.append(f"  {key} = {value:.2f}")
        return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _load_registry(
    include_extensions: bool = False,
) -> dict[str, Callable[[MigrationDataset], ExperimentResult]]:
    from repro.experiments import (
        fig01_trends,
        fig02_tweet_volume,
        fig03_weekly_activity,
        fig04_top_instances,
        fig05_user_share,
        fig06_instance_quantiles,
        fig07_network_sizes,
        fig08_followee_migration,
        fig09_switch_chord,
        fig10_switcher_influence,
        fig11_daily_activity,
        fig12_sources,
        fig13_crossposters,
        fig14_similarity,
        fig15_hashtags,
        fig16_toxicity,
    )

    modules = [
        fig01_trends,
        fig02_tweet_volume,
        fig03_weekly_activity,
        fig04_top_instances,
        fig05_user_share,
        fig06_instance_quantiles,
        fig07_network_sizes,
        fig08_followee_migration,
        fig09_switch_chord,
        fig10_switcher_influence,
        fig11_daily_activity,
        fig12_sources,
        fig13_crossposters,
        fig14_similarity,
        fig15_hashtags,
        fig16_toxicity,
    ]
    registry = {module.EXP_ID: module.run for module in modules}
    if include_extensions:
        from repro.experiments import ext01_retention, ext02_moderation, ext03_network

        for module in (ext01_retention, ext02_moderation, ext03_network):
            registry[module.EXP_ID] = module.run
    return registry


def all_experiment_ids(include_extensions: bool = False) -> list[str]:
    """Paper figures F1-F16, plus the X* extensions when requested."""
    ids = sorted(_load_registry(include_extensions), key=lambda x: (x[0], int(x[1:])))
    return ids


def extension_ids() -> list[str]:
    """The extension experiments (beyond the paper's figures)."""
    return [eid for eid in all_experiment_ids(include_extensions=True)
            if eid.startswith("X")]


def get_experiment(exp_id: str) -> Callable[[MigrationDataset], ExperimentResult]:
    registry = _load_registry(include_extensions=True)
    try:
        return registry[exp_id.upper()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(registry)}"
        ) from None


def run_all(
    dataset: MigrationDataset, include_extensions: bool = False
) -> list[ExperimentResult]:
    """Regenerate every figure (optionally with extensions) from one dataset.

    All experiments share the dataset's memoized analysis frames
    (:mod:`repro.frames`): the first figure that needs a column table or a
    derived product (embeddings, toxicity scores, ...) builds it, every
    later one reuses it.  The warm-up here just pins the shared instance so
    the sharing survives callers that copy the result list around.
    """
    from repro.frames import frames_enabled, frames_of

    if frames_enabled():
        frames_of(dataset)
    registry = _load_registry(include_extensions)
    return [registry[eid](dataset) for eid in all_experiment_ids(include_extensions)]
