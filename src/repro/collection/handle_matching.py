"""Hierarchical Mastodon-handle matching (Section 3.1).

Mastodon usernames appear in two written forms:

- ``@alice@example.com`` (the acct form), and
- ``https://example.com/@alice`` (the profile-URL form).

The matcher searches, for each Twitter account that posted a collected tweet:

1. the account's profile **metadata** -- display name, location, description,
   URL field and the pinned tweet's text; a handle found here is trusted
   as-is (people put *their own* handle in their bio);
2. failing that, the **text of the account's collected tweets**; a handle
   found here is only accepted when the Mastodon username is identical to
   the Twitter username, because tweets routinely mention *other people's*
   handles.

Only handles on domains present in the instance index are considered.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro import obs
from repro.twitter.models import Tweet, TwitterUser

#: ``@user@domain``.  The leading char class stops us matching the tail of an
#: e-mail-like token; Mastodon usernames are word chars, dots and dashes.
ACCT_RE = re.compile(
    r"(?<![\w@])@([A-Za-z0-9_]+(?:[.-][A-Za-z0-9_]+)*)@"
    r"([A-Za-z0-9-]+(?:\.[A-Za-z0-9-]+)+)"
)

#: ``https://domain/@user``.
URL_RE = re.compile(
    r"https?://([A-Za-z0-9-]+(?:\.[A-Za-z0-9-]+)+)/@"
    r"([A-Za-z0-9_]+(?:[.-][A-Za-z0-9_]+)*)"
)


def extract_handles(text: str, known_domains: frozenset[str]) -> list[tuple[str, str]]:
    """All ``(username, domain)`` handles in ``text`` on known instances.

    Order of appearance is preserved; duplicates are removed.
    """
    found: list[tuple[str, str]] = []
    seen: set[tuple[str, str]] = set()
    for match in ACCT_RE.finditer(text):
        handle = (match.group(1), match.group(2).lower())
        if handle[1] in known_domains and handle not in seen:
            seen.add(handle)
            found.append(handle)
    for match in URL_RE.finditer(text):
        handle = (match.group(2), match.group(1).lower())
        if handle[1] in known_domains and handle not in seen:
            seen.add(handle)
            found.append(handle)
    return found


@dataclass(frozen=True)
class Match:
    """One Twitter->Mastodon account mapping."""

    twitter_user_id: int
    twitter_username: str
    mastodon_username: str
    mastodon_domain: str
    matched_via: str  # 'metadata' | 'tweet'

    @property
    def mastodon_acct(self) -> str:
        return f"{self.mastodon_username}@{self.mastodon_domain}"

    @property
    def same_username(self) -> bool:
        return self.twitter_username.lower() == self.mastodon_username.lower()


class HandleMatcher:
    """Runs the two-step hierarchical matching."""

    def __init__(self, known_domains: frozenset[str]) -> None:
        if not known_domains:
            raise ValueError("the instance index is empty")
        self._domains = frozenset(d.lower() for d in known_domains)

    def match_metadata(self, user: TwitterUser, pinned_text: str = "") -> Match | None:
        """Step 1: search profile metadata (and the pinned tweet's text)."""
        fields = list(user.metadata_fields().values())
        if pinned_text:
            fields.append(pinned_text)
        for field in fields:
            if not field:
                continue
            handles = extract_handles(field, self._domains)
            if handles:
                username, domain = handles[0]
                return Match(
                    twitter_user_id=user.user_id,
                    twitter_username=user.username,
                    mastodon_username=username,
                    mastodon_domain=domain,
                    matched_via="metadata",
                )
        return None

    def match_tweets(self, user: TwitterUser, tweets: list[Tweet]) -> Match | None:
        """Step 2: search tweet text; require identical usernames."""
        for tweet in tweets:
            for username, domain in extract_handles(tweet.text, self._domains):
                if username.lower() == user.username.lower():
                    return Match(
                        twitter_user_id=user.user_id,
                        twitter_username=user.username,
                        mastodon_username=username,
                        mastodon_domain=domain,
                        matched_via="tweet",
                    )
        return None

    def match_user(
        self, user: TwitterUser, tweets: list[Tweet], pinned_text: str = ""
    ) -> Match | None:
        """The full hierarchy: metadata first, tweet text as fallback."""
        match = self.match_metadata(user, pinned_text=pinned_text)
        if match is not None:
            return match
        return self.match_tweets(user, tweets)

    def match_all(
        self,
        users: dict[int, TwitterUser],
        tweets_by_author: dict[int, list[Tweet]],
    ) -> dict[int, Match]:
        """Match every author of a collected tweet; returns id->Match."""
        registry = obs.current()
        matches: dict[int, Match] = {}
        for user_id, user in users.items():
            registry.counter("collection.matching.users_scanned").inc()
            match = self.match_user(user, tweets_by_author.get(user_id, []))
            if match is not None:
                matches[user_id] = match
                registry.counter(
                    "collection.matching.matched", via=match.matched_via
                ).inc()
        return matches
