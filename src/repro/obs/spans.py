"""Hierarchical spans: the pipeline's wall-clock and virtual-time ledger.

A span measures one named unit of work.  Spans nest: entering a span while
another is open makes it a child, so ``collect_dataset`` ends up with one
root span whose children are the seven §3 stages.  Each span records

- ``wall_seconds`` -- real elapsed time (``time.perf_counter``);
- ``start_epoch``/``end_epoch`` -- epoch timestamps (``time.time``) and
  ``start_mono``/``end_mono`` -- monotonic timestamps, so spans place on a
  real timeline (the Chrome/Perfetto exporter in
  :mod:`repro.obs.traceexport` consumes these);
- ``wait_seconds`` -- *virtual* rate-limiter time spent waiting inside the
  span (the crawl's simulated wall time, the quantity that made the paper
  sample at 10%);
- ``api_requests`` -- simulated API requests issued inside the span;
- ``error`` -- the exception type name when the span exited via an
  exception (``None`` on clean exit), so a failed stage is never sealed
  indistinguishably from a successful one;
- optional memory accounting (``peak_rss_bytes``, ``rss_delta_bytes``,
  ``tracemalloc_peak_bytes``, ``tracemalloc_delta_bytes``) filled in by
  :mod:`repro.obs.memory` when the owning tracer has an accountant.

The virtual quantities are read through snapshot callables supplied by the
owning registry, so the tracer itself has no dependency on any API layer.
Nothing here touches RNG state: instrumentation must never perturb the
simulation it observes (the event log and memory accountant only *read*
clocks and allocator statistics).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from types import TracebackType


class Span:
    """One timed unit of work in the trace tree."""

    __slots__ = (
        "name",
        "parent",
        "children",
        "wall_seconds",
        "wait_seconds",
        "api_requests",
        "meta",
        "start_epoch",
        "end_epoch",
        "start_mono",
        "end_mono",
        "error",
        "peak_rss_bytes",
        "rss_delta_bytes",
        "tracemalloc_peak_bytes",
        "tracemalloc_delta_bytes",
    )

    def __init__(self, name: str, parent: "Span | None" = None) -> None:
        self.name = name
        self.parent = parent
        self.children: list[Span] = []
        self.wall_seconds = 0.0
        self.wait_seconds = 0.0
        self.api_requests = 0
        self.meta: dict[str, object] = {}
        self.start_epoch: float | None = None
        self.end_epoch: float | None = None
        self.start_mono: float | None = None
        self.end_mono: float | None = None
        self.error: str | None = None
        self.peak_rss_bytes: int | None = None
        self.rss_delta_bytes: int | None = None
        self.tracemalloc_peak_bytes: int | None = None
        self.tracemalloc_delta_bytes: int | None = None
        if parent is not None:
            parent.children.append(self)

    def annotate(self, **fields: object) -> None:
        """Attach arbitrary key/value detail (counts, sizes, outcomes)."""
        self.meta.update(fields)

    @property
    def depth(self) -> int:
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def memory_fields(self) -> dict:
        """The recorded memory-accounting fields (only those that are set)."""
        fields = {}
        for key in (
            "peak_rss_bytes",
            "rss_delta_bytes",
            "tracemalloc_peak_bytes",
            "tracemalloc_delta_bytes",
        ):
            value = getattr(self, key)
            if value is not None:
                fields[key] = value
        return fields

    def to_dict(self) -> dict:
        doc = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "wait_seconds": self.wait_seconds,
            "api_requests": self.api_requests,
            "start_epoch": self.start_epoch,
            "end_epoch": self.end_epoch,
            "meta": dict(self.meta),
            "children": [child.to_dict() for child in self.children],
        }
        if self.error is not None:
            doc["error"] = self.error
        doc.update(self.memory_fields())
        return doc


class _SpanContext:
    """Context manager that opens a span on enter and seals it on exit."""

    __slots__ = (
        "_tracer",
        "_span",
        "_wall0",
        "_wait0",
        "_requests0",
        "_memory0",
        "_profiler",
    )

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._span = Span(name, parent=tracer.current)
        self._wall0 = 0.0
        self._wait0 = 0.0
        self._requests0 = 0
        self._memory0: tuple | None = None
        self._profiler = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        if span.parent is None:
            tracer.roots.append(span)
        tracer._stack.append(span)
        self._wait0 = tracer._wait_total()
        self._requests0 = tracer._request_total()
        memory = tracer.memory
        if memory is not None:
            self._memory0 = memory.on_enter(span)
        if tracer.profile_targets and span.name in tracer.profile_targets:
            self._profiler = tracer._start_profiler()
        events = tracer.events
        span.start_epoch = time.time()
        self._wall0 = span.start_mono = time.perf_counter()
        if events is not None and events.enabled:
            events.span_open(span)
        return span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        span = self._span
        tracer = self._tracer
        if self._profiler is not None:
            tracer._finish_profiler(self._profiler, span)
        end = time.perf_counter()
        span.end_mono = end
        span.end_epoch = time.time()
        span.wall_seconds += end - self._wall0
        span.wait_seconds += tracer._wait_total() - self._wait0
        span.api_requests += tracer._request_total() - self._requests0
        if exc_type is not None:
            # seal the span as *failed*: the report, the JSON export and the
            # trace exporter all surface the annotation, so a crashed stage
            # can never masquerade as a fast successful one
            span.error = exc_type.__name__
            span.meta.setdefault("error", exc_type.__name__)
        memory = tracer.memory
        if memory is not None:
            memory.on_exit(span, self._memory0)
        tracer._stack.pop()
        events = tracer.events
        if events is not None and events.enabled:
            events.span_close(span)
        return False


class Tracer:
    """Builds the span tree for one instrumented run.

    ``events`` (an :class:`repro.obs.events.EventLog`) receives a
    structured event per span open/close; ``memory`` (a
    :class:`repro.obs.memory.MemoryAccountant`) fills the spans' memory
    fields; ``profile_targets`` maps span names to top-N table sizes for
    the opt-in cProfile harness (:mod:`repro.obs.profile`).  All three are
    optional and default to off.
    """

    def __init__(
        self,
        request_total: Callable[[], int] = lambda: 0,
        wait_total: Callable[[], float] = lambda: 0.0,
        events=None,
    ) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._request_total = request_total
        self._wait_total = wait_total
        self.events = events
        self.memory = None
        self.profile_targets: dict[str, int] = {}
        self._active_profiler = None

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def span(self, name: str) -> _SpanContext:
        return _SpanContext(self, name)

    def walk(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> Span | None:
        """The first span (depth first) with ``name``, or None."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_list(self) -> list[dict]:
        return [root.to_dict() for root in self.roots]

    def adopt(self, spans: list[Span]) -> None:
        """Graft finished span trees from another tracer into this one.

        The adopted roots become children of the currently open span (so a
        shard's spans land under the stage span being merged into), or new
        roots when nothing is open.  The spans are assumed sealed; their
        recorded timings *and timestamps* are kept as-is — epoch clocks
        agree across ``fork`` children, so adopted shard spans stay
        correctly placed on the run's shared timeline.
        """
        parent = self.current
        for span in spans:
            span.parent = parent
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)

    # -- profiling hooks (see repro.obs.profile) ---------------------------

    def _start_profiler(self):
        """Start a cProfile profiler for the opening span, if possible.

        cProfile does not allow nested active profilers, so an inner target
        span is silently skipped while an outer one is being profiled.
        """
        if self._active_profiler is not None:
            return None
        import cProfile

        profiler = cProfile.Profile()
        self._active_profiler = profiler
        profiler.enable()
        return profiler

    def _finish_profiler(self, profiler, span: Span) -> None:
        profiler.disable()
        self._active_profiler = None
        from repro.obs.profile import attach_profile

        attach_profile(span, profiler, top=self.profile_targets.get(span.name, 20))


class NullSpan:
    """The shared do-nothing span handed out when tracing is disabled."""

    __slots__ = ()

    def annotate(self, **fields: object) -> None:
        pass


NULL_SPAN = NullSpan()


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


NULL_SPAN_CONTEXT = _NullSpanContext()
