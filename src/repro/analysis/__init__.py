"""The paper's analyses (Sections 4-6), one module per theme.

Every function takes a :class:`repro.collection.dataset.MigrationDataset`
(what the crawlers observed) and returns a small result object with the
figure's rows/series plus the scalar statistics quoted in the text.

- :mod:`repro.analysis.centralization`   -- RQ1, Figures 4-5
- :mod:`repro.analysis.instance_stats`   -- RQ1, Figure 6
- :mod:`repro.analysis.social_influence` -- RQ2, Figures 7-8
- :mod:`repro.analysis.switching`        -- RQ2, Figures 9-10
- :mod:`repro.analysis.activity`         -- RQ3, Figure 11
- :mod:`repro.analysis.sources`          -- RQ3, Figures 12-13
- :mod:`repro.analysis.content`          -- RQ3, Figure 14
- :mod:`repro.analysis.hashtags`         -- RQ3, Figure 15
- :mod:`repro.analysis.toxicity`         -- RQ3, Figure 16
- :mod:`repro.analysis.report`           -- every headline scalar in one place

Extensions beyond the paper:

- :mod:`repro.analysis.retention`  -- do migrants stay? (the paper's future work)
- :mod:`repro.analysis.moderation` -- per-instance moderation load
- :mod:`repro.analysis.bootstrap`  -- confidence intervals for per-user means
- :mod:`repro.analysis.sensitivity` -- threshold-robustness sweeps
- :mod:`repro.analysis.network_structure` -- networkx view of the ego networks
"""

from repro.analysis import (
    activity,
    bootstrap,
    centralization,
    content,
    hashtags,
    instance_stats,
    moderation,
    network_structure,
    report,
    retention,
    sensitivity,
    social_influence,
    sources,
    switching,
    toxicity,
)

__all__ = [
    "activity",
    "bootstrap",
    "centralization",
    "content",
    "hashtags",
    "instance_stats",
    "moderation",
    "network_structure",
    "report",
    "retention",
    "sensitivity",
    "social_influence",
    "sources",
    "switching",
    "toxicity",
]
