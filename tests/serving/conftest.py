"""Serving-layer fixtures: warm apps over the shared small dataset.

Apps are session-scoped — warming the columnar read models costs real
time and every test here treats the app as read-only (the caches it
accumulates are part of what the tests exercise, and the byte-
transparency contract says they cannot change any answer).
"""

from __future__ import annotations

import pytest

from repro.serving.app import ServingApp
from repro.serving.loadgen import LoadgenConfig, build_trace


@pytest.fixture(scope="session")
def serving_app(small_dataset) -> ServingApp:
    """Columnar app, caches on — the production configuration."""
    app = ServingApp(small_dataset)
    app.warm()
    return app


@pytest.fixture(scope="session")
def naive_app(small_dataset) -> ServingApp:
    """Naive views, caches off — the reference the fast path must match."""
    return ServingApp(small_dataset, columnar=False, caches=False)


@pytest.fixture(scope="session")
def small_trace(small_dataset):
    """A deterministic 400-request workload over the small dataset."""
    return build_trace(small_dataset, LoadgenConfig(seed=7, requests=400))
