"""An ``instances.social``-style directory.

Section 3.1 seeds the whole pipeline with "a comprehensive index of Mastodon
instances" (15,886 domains).  The directory serves that role: it lists every
known instance's metadata, including instances that never receive a migrant,
so the collectors query a superset of the instances that matter — exactly the
situation the paper's crawler faced.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.fediverse.models import InstanceInfo
from repro.fediverse.network import FediverseNetwork


class InstanceDirectory:
    """A queryable index of instance metadata."""

    def __init__(self, infos: Iterable[InstanceInfo]) -> None:
        self._infos: dict[str, InstanceInfo] = {}
        for info in infos:
            if info.domain in self._infos:
                raise ValueError(f"duplicate directory entry {info.domain}")
            self._infos[info.domain] = info

    @classmethod
    def from_network(cls, network: FediverseNetwork) -> "InstanceDirectory":
        return cls(instance.info() for instance in network.instances())

    def list_instances(self) -> list[InstanceInfo]:
        """All entries, sorted by domain for stable output."""
        return [self._infos[d] for d in sorted(self._infos)]

    def domains(self) -> list[str]:
        return sorted(self._infos)

    def get(self, domain: str) -> InstanceInfo | None:
        return self._infos.get(domain.lower())

    def by_topic(self, topic: str) -> list[InstanceInfo]:
        return [info for info in self.list_instances() if info.topic == topic]

    def __len__(self) -> int:
        return len(self._infos)

    def __contains__(self, domain: str) -> bool:
        return domain.lower() in self._infos
