"""Synthetic post generation.

Each post is a bag of topic words plus filler, optionally carrying hashtags
drawn from the topic's pool, migration boilerplate, or planted toxic tokens.
The generator is deterministic given its RNG stream, and its outputs are
*real text*: the embeddings, hashtag extraction and toxicity scoring all
operate on the generated strings, not on hidden labels.
"""

from __future__ import annotations

import re

import numpy as np

from repro.nlp.vocabulary import Topic, Vocabulary
from repro.util.distributions import zipf_weights
from repro.util.rngcompat import (
    build_cdf,
    choice_index,
    weighted_index,
    weighted_indices_no_replace,
)

_TAG_WEIGHT_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}

#: the archive index's token alphabet (must match repro.twitter.index)
_TOKEN_RE = re.compile(r"[a-z0-9']+")
#: the hashtag alphabet (must match repro.util.text's extractor)
_WORD_RE = re.compile(r"\w+")
#: vocab word -> its lowered token tuple, so batch generation can hand the
#: archive index exact token sets without re-running the regex per post
_WORD_TOKEN_CACHE: dict[str, tuple[str, ...]] = {}


def _word_tokens(word: str) -> tuple[str, ...]:
    tokens = _WORD_TOKEN_CACHE.get(word)
    if tokens is None:
        tokens = _WORD_TOKEN_CACHE[word] = tuple(_TOKEN_RE.findall(word.lower()))
    return tokens


def _tag_weights(n: int) -> tuple[np.ndarray, np.ndarray]:
    """``(weights, cdf)`` for an ``n``-tag pool (both static per ``n``)."""
    if n not in _TAG_WEIGHT_CACHE:
        weights = zipf_weights(n, 1.1)
        _TAG_WEIGHT_CACHE[n] = (weights, build_cdf(weights))
    return _TAG_WEIGHT_CACHE[n]


class PostGenerator:
    """Generates tweet/status texts conditioned on a topic mixture."""

    def __init__(self, rng: np.random.Generator, vocabulary: Vocabulary | None = None) -> None:
        self._rng = rng
        self._vocab = vocabulary if vocabulary is not None else Vocabulary()
        self._toxic_words = tuple(
            word for word, weight in self._vocab.toxic.items() if weight >= 0.4
        )
        # hot-loop aliases (one attribute hop instead of two per post)
        self._filler = self._vocab.filler
        self._topics = self._vocab.topics
        # Token fast path: when every pool word is its own (lowercase)
        # index token and no word can collide with the URL guard, a post's
        # token set is simply the set of its words plus lowered tags —
        # checked once per vocabulary, not per post.
        # word pools as object ndarrays: one fancy-index + ``.tolist()``
        # per batch replaces a per-word Python indexing loop
        self._filler_arr = np.array(self._vocab.filler, dtype=object)
        self._topic_arrs: dict[str, tuple] = {}
        token_exact = _TOKEN_RE.fullmatch
        self._simple_vocab = all(
            token_exact(w) and "http" not in w
            for t in self._vocab.topics
            for w in t.words
        ) and all(
            token_exact(w) and "http" not in w for w in self._vocab.filler
        ) and all(
            token_exact(w) and "http" not in w for w in self._toxic_words
        ) and all(
            _WORD_RE.fullmatch(tag)
            and token_exact(tag.lower())
            and "http" not in tag.lower()
            for t in self._vocab.topics
            for tag in t.hashtags
        )

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocab

    def pick_topic(self, mixture: np.ndarray) -> Topic:
        """Draw a topic index from a per-user mixture over ``vocabulary.topics``.

        Uses the rngcompat fast path (one uniform + binary search), which is
        draw-identical to ``rng.choice(n, p=mixture)`` without its per-call
        validation overhead.
        """
        if len(mixture) != len(self._vocab.topics):
            raise ValueError(
                f"mixture has {len(mixture)} entries for {len(self._vocab.topics)} topics"
            )
        return self._vocab.topics[weighted_index(self._rng, build_cdf(mixture))]

    def pick_topic_from_cdf(self, cdf: np.ndarray) -> Topic:
        """Like :meth:`pick_topic` for a mixture whose :func:`build_cdf` the
        caller has cached — one uniform draw plus a binary search, nothing
        rebuilt per post (:func:`weighted_index` inlined: this runs once per
        generated post)."""
        idx = int(cdf.searchsorted(self._rng.random(), side="right"))
        if idx >= len(cdf):  # guard against u == 1.0 rounding, as numpy does
            idx = len(cdf) - 1
        return self._topics[idx]

    def generate(
        self,
        topic: Topic,
        toxic: bool = False,
        hashtag_prob: float = 0.45,
        mention_migration: bool = False,
        length_mean: float = 15.0,
    ) -> str:
        """One post's text.

        ``toxic=True`` plants enough lexicon tokens that the Perspective-like
        scorer crosses the 0.5 threshold; ``mention_migration=True`` appends a
        migration hashtag (used for the Section 3.1 announcement tweets).
        """
        rng = self._rng
        integers = rng.integers
        random = rng.random
        topic_words = topic.words
        filler = self._filler
        n_words = max(4, int(rng.poisson(length_mean)))
        n_topic = max(2, int(round(n_words * 0.55)))
        # draw-identical to rng.choice(pool, size=k): one bounded-integer
        # batch indexing the (python-string) pool, skipping the per-call
        # array coercion of the pool itself (tolist: index with plain ints)
        idx = integers(0, len(topic_words), size=n_topic, dtype=np.int64).tolist()
        words = [topic_words[i] for i in idx]
        idx = integers(0, len(filler), size=n_words - n_topic, dtype=np.int64).tolist()
        words += [filler[i] for i in idx]
        rng.shuffle(words)

        if toxic:
            planted = rng.choice(self._toxic_words, size=2, replace=False)
            insert_at = integers(0, len(words) + 1)
            words[insert_at:insert_at] = [str(w) for w in planted]

        text = " ".join(words).capitalize()

        tags: list[str] = []
        hashtags = topic.hashtags
        if hashtags and random() < hashtag_prob:
            k = 1 + (random() < 0.25)
            if k > len(hashtags):
                k = len(hashtags)
            # tag popularity within a topic is itself skewed: the first tags
            # in the pool (#fediverse, #TwitterMigration, ...) dominate
            weights, tag_cdf = _tag_weights(len(hashtags))
            chosen = weighted_indices_no_replace(rng, weights, k, cdf=tag_cdf)
            if k == 1:
                tags.append(hashtags[chosen[0]])
            else:
                tags.extend(hashtags[i] for i in chosen)
        if mention_migration:
            migration_tags = self._vocab.topic("fediverse").hashtags
            tags.append(migration_tags[choice_index(rng, len(migration_tags))])
        if tags:
            text = text + " " + " ".join("#" + t for t in tags)
        return text

    def generate_batch(
        self,
        rng: np.random.Generator,
        topic: Topic,
        n: int,
        toxic_mask: np.ndarray | None = None,
        hashtag_prob: float = 0.45,
        mention_migration: bool = False,
        length_mean: float = 15.0,
    ) -> tuple[list[str], list[frozenset | None], list[tuple]]:
        """``n`` posts of one topic in one batched draw schedule.

        Returns ``(texts, token_sets, tag_tuples)`` where ``token_sets[i]``
        is exactly ``frozenset(re.findall(r"[a-z0-9']+", texts[i].lower()))``
        (``None`` when the fast path cannot guarantee it) and
        ``tag_tuples[i]`` are the case-preserved hashtags appended to the
        text — everything the dataset boundary needs to build ``Tweet``
        objects without re-scanning the text.

        Draws batch per *column* (word counts, topic indices, filler
        indices, toxic pairs, hashtag decisions) instead of per post, and
        words keep their draw order instead of being shuffled: post texts
        are bags of words to every consumer (token search, hashtag
        extraction, bag-of-words similarity), so word order is not part of
        the draw-order contract — see DESIGN.md §5.
        """
        if n <= 0:
            return [], [], []
        topic_words = topic.words
        filler = self._filler
        cached = self._topic_arrs.get(topic.name)
        if cached is None or cached[0] is not topic_words or cached[2] is not topic.hashtags:
            # per-tag precomputation: the text suffix, the lowered token
            # tuple and the case-preserved tag tuple a row with that tag
            # needs — all row-loop string work collapses to lookups
            tag_pre = tuple(
                (" #" + t, (t.lower(),), (t,)) for t in topic.hashtags
            )
            cached = (
                topic_words,
                np.array(topic_words, dtype=object),
                topic.hashtags,
                tag_pre,
            )
            self._topic_arrs[topic.name] = cached
        topic_arr = cached[1]
        tag_pre = cached[3]
        n_words = np.maximum(4, rng.poisson(length_mean, size=n))
        n_topic = np.maximum(2, np.rint(n_words * 0.55).astype(np.int64))
        n_fill = n_words - n_topic
        t_idx = rng.integers(0, len(topic_words), size=int(n_topic.sum()))
        f_idx = rng.integers(0, len(filler), size=int(n_fill.sum()))
        t_words_all: list[str] = topic_arr[t_idx].tolist()
        f_words_all: list[str] = self._filler_arr[f_idx].tolist()
        if toxic_mask is not None and toxic_mask.any():
            toxic_rows = np.flatnonzero(toxic_mask)
            pool = self._toxic_words
            k = len(pool)
            ti = rng.integers(0, k, size=len(toxic_rows))
            tj = rng.integers(0, k - 1, size=len(toxic_rows))
            tj = tj + (tj >= ti)  # distinct ordered pair, uniform
            toxic_pairs = {
                int(row): (pool[int(a)], pool[int(b)])
                for row, a, b in zip(toxic_rows, ti, tj)
            }
        else:
            toxic_pairs = {}

        hashtags = topic.hashtags
        # row -> (text suffix, lowered-token tuple, case-preserved tag tuple)
        tags_by_row: dict[int, tuple[str, tuple, tuple]] = {}
        if hashtags:
            tagged = np.flatnonzero(rng.random(n) < hashtag_prob)
            if len(tagged):
                two = rng.random(len(tagged)) < 0.25
                weights, tag_cdf = _tag_weights(len(hashtags))
                singles = tagged[~two]
                if len(singles):
                    u = rng.random(len(singles))
                    picks = np.minimum(
                        tag_cdf.searchsorted(u, side="right"), len(tag_cdf) - 1
                    )
                    for row, pick in zip(singles.tolist(), picks.tolist()):
                        tags_by_row[row] = tag_pre[pick]
                doubles = tagged[two]
                if len(doubles):
                    if len(hashtags) < 2:
                        only = tag_pre[0]
                        for row in doubles.tolist():
                            tags_by_row[row] = only
                    else:
                        # two weighted picks without replacement, batched:
                        # rejection-resampling the second pick until it
                        # differs is distribution-identical to drawing it
                        # from the renormalised remainder (P = w_j/(1-w_i))
                        top = len(tag_cdf) - 1
                        first = np.minimum(
                            tag_cdf.searchsorted(
                                rng.random(len(doubles)), side="right"
                            ),
                            top,
                        )
                        second = np.minimum(
                            tag_cdf.searchsorted(
                                rng.random(len(doubles)), side="right"
                            ),
                            top,
                        )
                        clash = np.flatnonzero(second == first)
                        while len(clash):
                            second[clash] = np.minimum(
                                tag_cdf.searchsorted(
                                    rng.random(len(clash)), side="right"
                                ),
                                top,
                            )
                            clash = clash[second[clash] == first[clash]]
                        for row, a, b in zip(
                            doubles.tolist(), first.tolist(), second.tolist()
                        ):
                            pa = tag_pre[a]
                            pb = tag_pre[b]
                            tags_by_row[row] = (
                                pa[0] + pb[0], pa[1] + pb[1], pa[2] + pb[2]
                            )
        if mention_migration:
            migration_tags = self._vocab.topic("fediverse").hashtags
            migration_pre = tuple(
                (" #" + t, (t.lower(),), (t,)) for t in migration_tags
            )
            picks = rng.integers(0, len(migration_tags), size=n)
            for row, pick in enumerate(picks.tolist()):
                pm = migration_pre[pick]
                prev = tags_by_row.get(row)
                if prev is None:
                    tags_by_row[row] = pm
                else:
                    tags_by_row[row] = (
                        prev[0] + pm[0], prev[1] + pm[1], prev[2] + pm[2]
                    )

        texts: list[str] = []
        token_sets: list[frozenset | None] = []
        tag_tuples: list[tuple] = []
        t_pos = 0
        f_pos = 0
        simple = self._simple_vocab
        word_tokens = _word_tokens
        tags_get = tags_by_row.get
        toxic_get = toxic_pairs.get
        n_topic_l = n_topic.tolist()
        n_fill_l = n_fill.tolist()
        for row in range(n):
            nt = n_topic_l[row]
            nf = n_fill_l[row]
            words = t_words_all[t_pos:t_pos + nt] + f_words_all[f_pos:f_pos + nf]
            t_pos += nt
            f_pos += nf
            pair = toxic_get(row)
            if pair is not None:
                words += pair
            entry = tags_get(row)
            if simple:
                # every word is its own lowercase token, so the set IS the
                # word bag (plus lowered tags) — no per-word regex walk.
                # Words are all-lowercase, so capitalising the first word
                # alone equals str.capitalize() on the joined text (which
                # would lowercase the rest) without the second full copy.
                tokens = frozenset(words)
                words[0] = words[0].capitalize()
                text = " ".join(words)
                if entry is not None:
                    text += entry[0]
                    tokens = tokens.union(entry[1])
                    tag_tuples.append(entry[2])
                else:
                    tag_tuples.append(())
                token_sets.append(tokens)
                texts.append(text)
                continue
            text = " ".join(words).capitalize()
            acc: set[str] = set()
            for word in words:
                acc.update(word_tokens(word))
            if entry is not None:
                text += entry[0]
                for tag in entry[2]:
                    acc.update(word_tokens(tag))
                tag_tuples.append(entry[2])
            else:
                tag_tuples.append(())
            if "#" in text.partition(" #")[0] or "http" in text:
                # a vocab word carries index-relevant punctuation: fall back
                # to the regex derivation at the dataset boundary
                token_sets.append(None)
            else:
                token_sets.append(frozenset(acc))
            texts.append(text)
        return texts, token_sets, tag_tuples

    def migration_announcement(self, mastodon_handle: str, style: str) -> str:
        """A tweet advertising a Mastodon account (the §3.1 discovery signal).

        ``style`` selects how the handle is written: ``'acct'`` for the
        ``@user@domain`` form, ``'url'`` for ``https://domain/@user``.
        """
        username, domain = mastodon_handle.split("@", 1)
        if style == "acct":
            handle_text = f"@{username}@{domain}"
        elif style == "url":
            handle_text = f"https://{domain}/@{username}"
        else:
            raise ValueError(f"unknown announcement style {style!r}")
        templates = (
            f"Find me on mastodon {handle_text} #TwitterMigration",
            f"Good bye twitter, I moved to {handle_text}",
            f"I am now posting at {handle_text} #Mastodon",
            f"Bye bye twitter! Follow me at {handle_text} #ByeByeTwitter",
            f"Joining the fediverse: {handle_text} #MastodonMigration",
        )
        return templates[choice_index(self._rng, len(templates))]

    def profile_bio(self, topic: Topic, mastodon_handle: str | None = None) -> str:
        """A short profile description, optionally embedding a Mastodon handle."""
        rng = self._rng
        words = rng.choice(topic.words, size=4, replace=False)
        bio = " ".join(str(w) for w in words).capitalize()
        if mastodon_handle is not None:
            username, domain = mastodon_handle.split("@", 1)
            bio += f" | @{username}@{domain}"
        return bio
