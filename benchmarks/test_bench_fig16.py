"""Benchmark: regenerate Toxicity CDFs (Figure 16).

Measures the analysis cost of the figure on the shared benchmark dataset
and asserts the paper's qualitative shape holds.
"""

from repro.experiments.registry import get_experiment


def test_bench_fig16(benchmark, bench_dataset):
    result = benchmark(get_experiment("F16"), bench_dataset)
    assert result.notes["pct_tweets_toxic"] > result.notes["pct_statuses_toxic"]
