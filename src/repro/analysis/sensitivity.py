"""Threshold sensitivity analyses (robustness extension).

Two of the paper's analyses hinge on a threshold choice:

- content similarity uses cosine > 0.7 over sentence embeddings (§6.1);
- toxicity uses Perspective score > 0.5, noting 0.8 is also used (§6.3).

These sweeps re-run each analysis across the plausible threshold range so a
reader can see whether the findings are artefacts of the cut-off.  Both
return plain rows an experiment or notebook can print or plot.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.content import content_similarity
from repro.analysis.toxicity import toxicity_analysis
from repro.collection.dataset import MigrationDataset
from repro.errors import AnalysisError
from repro.nlp.embeddings import HashingSentenceEncoder
from repro.nlp.toxicity import PerspectiveScorer

DEFAULT_SIMILARITY_THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.9)
DEFAULT_TOXICITY_THRESHOLDS = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


@dataclass(frozen=True)
class SimilaritySweepRow:
    threshold: float
    mean_pct_similar: float
    pct_users_all_different: float


@dataclass(frozen=True)
class ToxicitySweepRow:
    threshold: float
    pct_tweets_toxic: float
    pct_statuses_toxic: float

    @property
    def twitter_excess(self) -> float:
        """Twitter-minus-Mastodon toxic share at this threshold."""
        return self.pct_tweets_toxic - self.pct_statuses_toxic


def similarity_sweep(
    dataset: MigrationDataset,
    thresholds: Sequence[float] = DEFAULT_SIMILARITY_THRESHOLDS,
    encoder: HashingSentenceEncoder | None = None,
) -> list[SimilaritySweepRow]:
    """Figure 14's statistics across similarity thresholds.

    Monotone by construction: a stricter threshold can only shrink the
    similar share and grow the all-different share.
    """
    if not thresholds:
        raise AnalysisError("need at least one threshold")
    encoder = encoder if encoder is not None else HashingSentenceEncoder()
    rows = []
    for threshold in sorted(thresholds):
        result = content_similarity(dataset, threshold=threshold, encoder=encoder)
        rows.append(
            SimilaritySweepRow(
                threshold=threshold,
                mean_pct_similar=result.mean_pct_similar,
                pct_users_all_different=result.pct_users_all_different,
            )
        )
    return rows


def toxicity_sweep(
    dataset: MigrationDataset,
    thresholds: Sequence[float] = DEFAULT_TOXICITY_THRESHOLDS,
    scorer: PerspectiveScorer | None = None,
) -> list[ToxicitySweepRow]:
    """Figure 16's platform comparison across toxicity thresholds."""
    if not thresholds:
        raise AnalysisError("need at least one threshold")
    scorer = scorer if scorer is not None else PerspectiveScorer()
    rows = []
    for threshold in sorted(thresholds):
        result = toxicity_analysis(dataset, threshold=threshold, scorer=scorer)
        rows.append(
            ToxicitySweepRow(
                threshold=threshold,
                pct_tweets_toxic=result.pct_tweets_toxic,
                pct_statuses_toxic=result.pct_statuses_toxic,
            )
        )
    return rows


def ordering_robust(rows: Sequence[ToxicitySweepRow]) -> bool:
    """Whether Twitter > Mastodon toxicity holds at every swept threshold
    where either platform shows any toxic content at all."""
    informative = [
        r for r in rows if r.pct_tweets_toxic > 0 or r.pct_statuses_toxic > 0
    ]
    if not informative:
        return False
    return all(r.twitter_excess >= 0 for r in informative)
