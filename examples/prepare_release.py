"""Prepare the anonymized public dataset (the paper's §3.4 promise).

Usage::

    python examples/prepare_release.py [--scale 0.003] [--out release.json] \
                                       [--key my-secret]

Builds a world, collects the dataset, pseudonymises every user identifier
(ids, usernames, handles — including handle mentions inside post text) with
a keyed one-way hash, writes the release file, and then *proves* the release
is analysis-complete by re-running the full headline report on the
anonymized copy and diffing it against the original.
"""

import argparse

from repro import MigrationDataset, build_world, collect_dataset
from repro.simulation.config import SimConfig
from repro.analysis.report import headline_report
from repro.collection.anonymize import Anonymizer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.003)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=str, default="release.json")
    parser.add_argument("--key", type=str, default="rotate-me-before-release")
    args = parser.parse_args()

    print("Collecting the dataset...")
    dataset = collect_dataset(build_world(SimConfig(seed=args.seed, scale=args.scale)))
    print(f"  {dataset.migrant_count} matched users, "
          f"{len(dataset.collected_tweets)} collected tweets")

    print("Anonymizing...")
    anonymizer = Anonymizer(key=args.key)
    release = anonymizer.anonymize(dataset)
    release.save(args.out)
    print(f"  wrote {args.out}")

    print("Verifying the release supports every analysis...")
    reloaded = MigrationDataset.load(args.out)
    original = {r.key: r.measured for r in headline_report(dataset)}
    released = {r.key: r.measured for r in headline_report(reloaded)}
    worst = 0.0
    for key, value in original.items():
        drift = abs(released[key] - value)
        worst = max(worst, drift)
        marker = "" if drift < 1e-9 else f"  (drift {drift:.3f})"
        if drift > 1e-9:
            print(f"  {key}: {value:.2f} -> {released[key]:.2f}{marker}")
    print(f"  {len(original)} statistics checked; max drift {worst:.4f} "
          "(content statistics may drift slightly: handle tokens inside "
          "announcement tweets are pseudonymised)")

    sample = next(iter(reloaded.matched.values()))
    print(f"\nSample released record: {sample.twitter_username} -> "
          f"{sample.mastodon_acct}")


if __name__ == "__main__":
    main()
