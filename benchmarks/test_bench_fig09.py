"""Benchmark: regenerate Instance-switch chord matrix (Figure 9).

Measures the analysis cost of the figure on the shared benchmark dataset
and asserts the paper's qualitative shape holds.
"""

from repro.experiments.registry import get_experiment


def test_bench_fig09(benchmark, bench_dataset):
    result = benchmark(get_experiment("F9"), bench_dataset)
    assert 0.0 < result.notes["pct_switched"] < 15.0
