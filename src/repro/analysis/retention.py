"""Retention analysis (the paper's stated future work, Section 8).

*"We would like to further investigate whether migrating users retain their
Mastodon accounts or return to Twitter."*  This extension classifies each
migrant by their end-of-window behaviour:

- **retained** — still posting on Mastodon in the final week;
- **dual** — posting on both platforms in the final week;
- **returned** — stopped posting on Mastodon (no status in the final week)
  while still tweeting;
- **lurking** — no posts anywhere in the final week, Mastodon account alive;
- **never engaged** — matched, but never posted a single status.

The classification uses only crawled timelines, so it runs on a collected
(or anonymised) dataset like every other analysis.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from repro.collection.dataset import MigrationDataset
from repro.errors import AnalysisError
from repro.util.clock import SIM_END
from repro.util.stats import Ecdf, percent


@dataclass(frozen=True)
class RetentionResult:
    """End-of-window behaviour of migrants."""

    pct_retained: float  # active on Mastodon in the final week
    pct_dual: float  # active on both platforms in the final week
    pct_returned: float  # tweeting but silent on Mastodon
    pct_lurking: float  # silent on both
    pct_never_engaged: float  # no status ever
    days_active_cdf: Ecdf  # distinct Mastodon posting days per migrant
    user_count: int


def retention(
    dataset: MigrationDataset,
    window_end: _dt.date = SIM_END,
    final_days: int = 7,
) -> RetentionResult:
    """Classify migrants by their final-week behaviour."""
    if final_days < 1:
        raise AnalysisError("final window must be at least one day")
    if not dataset.matched:
        raise AnalysisError("empty dataset")
    cutoff = window_end - _dt.timedelta(days=final_days - 1)
    retained = dual = returned = lurking = never = 0
    days_active: list[int] = []
    n = 0
    for uid in dataset.matched:
        statuses = dataset.mastodon_timelines.get(uid)
        tweets = dataset.twitter_timelines.get(uid)
        if statuses is None and uid not in dataset.accounts:
            continue  # unreachable account: cannot classify
        n += 1
        status_days = {s.created_date for s in statuses or ()}
        tweet_days = {t.created_date for t in tweets or ()}
        days_active.append(len(status_days))
        masto_final = any(d >= cutoff for d in status_days)
        twitter_final = any(d >= cutoff for d in tweet_days)
        if not status_days:
            never += 1
        elif masto_final and twitter_final:
            dual += 1
            retained += 1
        elif masto_final:
            retained += 1
        elif twitter_final:
            returned += 1
        else:
            lurking += 1
    if n == 0:
        raise AnalysisError("no classifiable users")
    return RetentionResult(
        pct_retained=percent(retained, n),
        pct_dual=percent(dual, n),
        pct_returned=percent(returned, n),
        pct_lurking=percent(lurking, n),
        pct_never_engaged=percent(never, n),
        days_active_cdf=Ecdf.from_sample(days_active),
        user_count=n,
    )
