"""Extension X2: the moderation load volunteer admins inherit.

Per-instance toxic-status volume over the crawled timelines — the concrete
burden behind Section 6.3's closing concern about volunteer moderation.
"""

from __future__ import annotations

from repro.analysis.moderation import moderation_load
from repro.collection.dataset import MigrationDataset
from repro.experiments.registry import ExperimentResult

EXP_ID = "X2"
TITLE = "Per-instance moderation load (extension)"


def run(dataset: MigrationDataset) -> ExperimentResult:
    result = moderation_load(dataset)
    rows = [
        (row.domain, row.users, row.statuses, row.toxic_statuses,
         row.toxic_share_pct)
        for row in result.rows[:20]
    ]
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["instance", "migrants", "statuses", "toxic", "toxic %"],
        rows=rows,
        notes={
            "pct_instances_with_toxic_content": (
                result.pct_instances_with_toxic_content
            ),
            "small_instance_toxic_share_pct": result.small_instance_toxic_share_pct,
            "large_instance_toxic_share_pct": result.large_instance_toxic_share_pct,
            "small_cutoff_users": float(result.small_cutoff),
        },
    )
