"""Tweet sources (posting clients).

Figure 12 aggregates tweets by their ``source`` attribute and shows that the
two well-known cross-posting bridges grow by an order of magnitude after the
takeover.  The simulator assigns each tweet a source from this registry.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TweetSource:
    """A posting client."""

    name: str
    official: bool = False
    crossposter: bool = False


#: Official first-party clients, ordered roughly by real-world popularity.
OFFICIAL_SOURCES: tuple[TweetSource, ...] = (
    TweetSource("Twitter Web App", official=True),
    TweetSource("Twitter for iPhone", official=True),
    TweetSource("Twitter for Android", official=True),
    TweetSource("Twitter for iPad", official=True),
    TweetSource("TweetDeck", official=True),
)

#: The two Mastodon<->Twitter bridges called out in Section 6.1.
CROSSPOSTER_SOURCES: tuple[TweetSource, ...] = (
    TweetSource("Mastodon Twitter Crossposter", crossposter=True),
    TweetSource("Moa Bridge", crossposter=True),
)

#: Third-party tools that appear in the long tail of Figure 12.
THIRD_PARTY_SOURCES: tuple[TweetSource, ...] = (
    TweetSource("Buffer"),
    TweetSource("Hootsuite Inc."),
    TweetSource("IFTTT"),
    TweetSource("Tweetbot for iOS"),
    TweetSource("Echofon"),
    TweetSource("Twitterrific for iOS"),
    TweetSource("Fenix 2"),
    TweetSource("Talon Android"),
    TweetSource("dlvr.it"),
    TweetSource("Zapier.com"),
    TweetSource("SocialFlow"),
    TweetSource("Sprout Social"),
    TweetSource("WordPress.com"),
    TweetSource("Instagram"),
    TweetSource("Curious Cat"),
    TweetSource("Cheap Bots, Done Quick!"),
    TweetSource("Twittascope"),
    TweetSource("Tumblr"),
    TweetSource("Medium"),
    TweetSource("LinkedIn"),
    TweetSource("Paper.li"),
    TweetSource("Revue"),
    TweetSource("Typefully"),
    TweetSource("Chirpty"),
    TweetSource("Podcasts App"),
)

ALL_SOURCES: tuple[TweetSource, ...] = (
    OFFICIAL_SOURCES + CROSSPOSTER_SOURCES + THIRD_PARTY_SOURCES
)

_BY_NAME = {source.name: source for source in ALL_SOURCES}

#: Names of the cross-posting bridges, for quick membership tests.
CROSSPOSTER_NAMES: frozenset[str] = frozenset(s.name for s in CROSSPOSTER_SOURCES)


def source_by_name(name: str) -> TweetSource:
    """Look up a registered source; unknown names become generic sources."""
    return _BY_NAME.get(name, TweetSource(name))


def is_crossposter(source_name: str) -> bool:
    """Whether ``source_name`` is one of the two cross-posting bridges."""
    return source_name in CROSSPOSTER_NAMES
