"""Unit tests for the columnar tables behind :mod:`repro.frames`."""

from __future__ import annotations

import datetime as dt

import numpy as np

from repro.frames.tables import (
    Interner,
    build_edge_table,
    build_profile_table,
    build_timeline_table,
    build_token_table,
    day_from_ordinal,
    ordinal_counts,
)
from tests.conftest import make_status, make_tweet


class TestInterner:
    def test_first_seen_order(self):
        interner = Interner()
        assert interner.intern("b") == 0
        assert interner.intern("a") == 1
        assert interner.intern("b") == 0
        assert interner.vocab == ["b", "a"]

    def test_get_without_insert(self):
        interner = Interner()
        interner.intern("x")
        assert interner.get("x") == 0
        assert interner.get("missing") is None
        assert interner.vocab == ["x"]


class TestTimelineTable:
    def timelines(self):
        oct28 = dt.date(2022, 10, 28)
        nov1 = dt.date(2022, 11, 1)
        return {
            1: [
                make_tweet(10, 1, oct28, "hello #world", source="AppA"),
                make_tweet(11, 1, nov1, "plain text", source="AppB"),
            ],
            2: [make_tweet(20, 2, nov1, "#world again #World", source="AppA")],
            3: [],
        }

    def test_slices_follow_dict_order(self):
        table = build_timeline_table(self.timelines(), "source", "is_retweet")
        assert table.uids == [1, 2, 3]
        assert [
            (uid, start, stop) for uid, start, stop in table.iter_slices()
        ] == [(1, 0, 2), (2, 2, 3), (3, 3, 3)]
        assert table.slice_of(2) == (2, 3)
        assert table.slice_of(99) is None
        assert table.row_count == 3

    def test_columns_match_objects(self):
        timelines = self.timelines()
        table = build_timeline_table(timelines, "source", "is_retweet")
        assert table.texts == ["hello #world", "plain text", "#world again #World"]
        assert [table.labels[i] for i in table.label_ids] == [
            "AppA", "AppB", "AppA",
        ]
        assert table.day_ordinals.tolist() == [
            dt.date(2022, 10, 28).toordinal(),
            dt.date(2022, 11, 1).toordinal(),
            dt.date(2022, 11, 1).toordinal(),
        ]
        assert table.row_uids.tolist() == [1, 1, 2]

    def test_tag_postings_keep_duplicates(self):
        table = build_timeline_table(self.timelines(), "source", "is_retweet")
        tags = [table.tags[i] for i in table.tag_ids]
        # "#world again #World" normalises both occurrences to "world"
        assert tags.count("world") == 3

    def test_status_flag_column(self):
        from repro.fediverse.models import Status

        day = dt.date(2022, 11, 2)
        boost = Status(
            status_id=1,
            account_acct="a@x",
            created_at=dt.datetime.combine(day, dt.time(12, 0)),
            text="boost",
            reblog_of_id=99,
        )
        table = build_timeline_table(
            {5: [boost, make_status(2, "a@x", day, "own post")]},
            "application",
            "is_boost",
        )
        assert table.flags.tolist() == [True, False]


class TestTokenTable:
    def test_offsets_and_vocab(self):
        table = build_token_table(["one two two", "", "two three"])
        assert table.offsets.tolist() == [0, 3, 3, 5]
        segment = table.flat[0:3]
        assert [table.vocab[i] for i in segment] == ["one", "two", "two"]

    def test_empty_corpus(self):
        table = build_token_table([])
        assert table.offsets.tolist() == [0]
        assert table.flat.size == 0


class TestOrdinalHelpers:
    def test_round_trip(self):
        day = dt.date(2022, 10, 27)
        assert day_from_ordinal(day.toordinal()) == day

    def test_ordinal_counts_skip_empty_days(self):
        base = dt.date(2022, 11, 1).toordinal()
        counts = ordinal_counts(
            np.asarray([base, base + 2, base, base + 2, base + 2], dtype=np.int64)
        )
        assert counts == [
            (dt.date(2022, 11, 1), 2),
            (dt.date(2022, 11, 3), 3),
        ]

    def test_ordinal_counts_empty(self):
        assert ordinal_counts(np.asarray([], dtype=np.int64)) == []


class TestDatasetTables:
    def test_profile_table(self, tiny_dataset):
        table = build_profile_table(tiny_dataset)
        assert table.matched_uids == [1, 2, 3, 4, 5]
        domains = [table.domains[i] for i in table.matched_domain_ids]
        assert domains == [
            "mastodon.social",
            "mastodon.social",
            "mastodon.social",
            "tiny.host",
            "art.school",
        ]
        row = table.acct_row[2]
        assert table.domains[table.acct_second_domain_ids[row]] == "art.school"
        assert table.acct_second_ordinals[row] == dt.date(2022, 11, 10).toordinal()
        # user 3 never switched
        assert table.acct_second_domain_ids[table.acct_row[3]] == -1

    def test_edge_table(self, tiny_dataset):
        table = build_edge_table(tiny_dataset)
        assert table.sampled_uids == [1, 2, 4]
        pairs = set(zip(table.sources.tolist(), table.targets.tolist()))
        assert (1, 2) in pairs and (2, 5) in pairs
