"""Instrumentation must not change a single collected byte.

The observability layer's contract: running the §3 pipeline under a live
metrics registry produces a dataset byte-identical to an uninstrumented
run.  This is what makes every telemetry number trustworthy — the act of
measuring does not perturb the measurement (no RNG draws, no virtual-clock
writes, no ordering changes).
"""

from repro import obs
from repro.collection.pipeline import PIPELINE_STAGES, collect_dataset
from repro.simulation.config import SimConfig
from repro.simulation.world import build_world

SEED = 19
SCALE = 0.002


class TestInstrumentationDeterminism:
    def test_instrumented_run_is_byte_identical(self, tmp_path):
        # Two identically-seeded worlds, because the trends service draws
        # from the world's RNG per call: each world may be collected once.
        # The instrumented run turns on the ENTIRE profiling plane — span
        # timestamps, the event stream, counter watches, memory accounting
        # (with allocation tracing) and per-span cProfile — and must still
        # produce the same bytes.
        plain = collect_dataset(build_world(SimConfig(seed=SEED, scale=SCALE)))
        registry = obs.MetricsRegistry()
        registry.watch_default_counters()
        accountant = registry.enable_memory(rss=True, trace_allocs=True)
        try:
            with obs.use(registry), obs.profile_span(
                "world.simulate", registry=registry
            ):
                instrumented = collect_dataset(build_world(SimConfig(seed=SEED, scale=SCALE)))
        finally:
            accountant.close()

        plain_path = tmp_path / "plain.json"
        instrumented_path = tmp_path / "instrumented.json"
        plain.save(plain_path)
        instrumented.save(instrumented_path)
        assert plain_path.read_bytes() == instrumented_path.read_bytes()

        # sanity: the instrumented run actually recorded the full trace
        names = obs.span_names(registry)
        assert "collect_dataset" in names
        assert "build_world" in names
        for stage in PIPELINE_STAGES:
            assert f"collect.{stage}" in names
        assert registry.counter_total("twitter.ratelimit.requests") > 0
        assert registry.counter_total("mastodon.api.requests") > 0
        # ... and the plane's new layers all recorded something
        kinds = {e["kind"] for e in registry.events.events}
        assert {"span_open", "span_close", "heartbeat"} <= kinds
        simulate = registry.tracer.find("world.simulate")
        assert simulate.tracemalloc_peak_bytes is not None
        assert "profile" in simulate.meta

    def test_span_request_accounting_reconciles(self, small_world):
        registry = obs.MetricsRegistry()
        with obs.use(registry):
            collect_dataset(small_world)
        root = registry.tracer.find("collect_dataset")
        total = registry.counter_total(
            "twitter.ratelimit.requests"
        ) + registry.counter_total("mastodon.api.requests")
        # every request issued during collection lands inside the root span
        assert root.api_requests == total
        # and stage requests sum to (at most) the root's, never more
        stage_sum = sum(
            child.api_requests for child in root.children
        )
        assert stage_sum <= root.api_requests
