"""The timestamped event stream: an append-only structured log of the run.

Where spans answer "how long did each stage take", the event stream answers
"what happened *when*": every span open/close, every counter that crosses a
watched threshold, and explicit :meth:`EventLog.heartbeat` calls (e.g. the
per-tick progress events ``world.simulate`` emits) land here as one record
each, stamped with both the epoch clock and the monotonic clock.

Event schema (one JSON object per line in the ``.jsonl`` export)::

    {"ts": <epoch seconds>, "mono": <perf_counter seconds>,
     "kind": "span_open" | "span_close" | "counter" | "heartbeat",
     "name": "<span/counter/heartbeat name>",
     "fields": {...}}

The log is deliberately a plain in-memory list: it is picklable (shard
registries carry their event logs across the ``fork`` boundary and
:meth:`extend` folds them back in merge order), and nothing is written to
disk until :meth:`write_jsonl` — so instrumented library code never owns a
file handle.  Like the rest of :mod:`repro.obs`, the log only *reads*
clocks; it never touches RNG state or feeds back into the simulation.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

#: Event kinds the stream produces (the JSONL/Perfetto validators check
#: membership against this set).
EVENT_KINDS = ("span_open", "span_close", "counter", "heartbeat")


class EventLog:
    """An append-only, timestamped, structured event log for one run."""

    __slots__ = ("events",)

    enabled = True

    def __init__(self) -> None:
        self.events: list[dict] = []

    def __len__(self) -> int:
        return len(self.events)

    # -- producers ---------------------------------------------------------

    def emit(
        self,
        kind: str,
        name: str,
        ts: float | None = None,
        mono: float | None = None,
        **fields: object,
    ) -> None:
        """Append one event; timestamps default to *now* on both clocks."""
        self.events.append(
            {
                "ts": time.time() if ts is None else ts,
                "mono": time.perf_counter() if mono is None else mono,
                "kind": kind,
                "name": name,
                "fields": fields,
            }
        )

    def heartbeat(self, name: str, **fields: object) -> None:
        """An explicit liveness/progress event (e.g. one per simulated day)."""
        self.emit("heartbeat", name, **fields)

    def span_open(self, span) -> None:
        self.emit(
            "span_open",
            span.name,
            ts=span.start_epoch,
            mono=span.start_mono,
            depth=span.depth,
        )

    def span_close(self, span) -> None:
        fields: dict[str, object] = {
            "depth": span.depth,
            "wall_seconds": span.wall_seconds,
        }
        if span.error is not None:
            fields["error"] = span.error
        self.emit("span_close", span.name, ts=span.end_epoch, mono=span.end_mono, **fields)

    def counter_event(self, counter, threshold: float) -> None:
        """A watched counter crossed ``threshold`` (see ``watch_counter``)."""
        self.emit(
            "counter",
            counter.name,
            value=counter.value,
            threshold=threshold,
            labels=dict(counter.labels),
        )

    # -- merge + export ----------------------------------------------------

    def extend(self, other: "EventLog") -> None:
        """Fold another log's events in (shard merge; order by shard, then
        re-sorted on the monotonic clock at export time)."""
        self.events.extend(other.events)

    def sorted_events(self) -> list[dict]:
        """The events ordered by monotonic timestamp (stable)."""
        return sorted(self.events, key=lambda e: e["mono"])

    def to_list(self) -> list[dict]:
        return [dict(event) for event in self.sorted_events()]

    def write_jsonl(self, path: str | Path) -> int:
        """Write the stream as JSON-lines, one event per line; returns the
        number of events written."""
        events = self.sorted_events()
        with Path(path).open("w") as fh:
            for event in events:
                fh.write(json.dumps(event) + "\n")
        return len(events)


def read_jsonl(path: str | Path) -> list[dict]:
    """Load an event stream written by :meth:`EventLog.write_jsonl`."""
    events = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


class NullEventLog(EventLog):
    """The shared do-nothing event log (the no-op registry's stream)."""

    __slots__ = ()

    enabled = False

    def emit(self, kind, name, ts=None, mono=None, **fields) -> None:
        pass

    def extend(self, other: EventLog) -> None:
        pass


#: The process-wide no-op event log (never records anything).
NULL_EVENTS = NullEventLog()
