"""A single Mastodon instance.

Each instance is an independent micro-blogging service (Section 2): it owns
its local accounts and their statuses, maintains the three timelines, counts
weekly activity, and participates in federation through activities delivered
by the :class:`repro.fediverse.network.FediverseNetwork`.
"""

from __future__ import annotations

import datetime as _dt
import zlib
from collections.abc import Iterator

from repro.fediverse.activitypub import make_acct, parse_acct
from repro.fediverse.errors import AccountNotFoundError, DuplicateAccountError
from repro.fediverse.models import Account, InstanceInfo, Status, WeeklyActivity
from repro.fediverse.policy import ContentPolicy
from repro.util.clock import iso_week
from repro.util.ids import SnowflakeGenerator
from repro.util.text import extract_hashtags


class MastodonInstance:
    """One federated micro-blogging server.

    Follow state is stored on the *followee's* home instance (who follows my
    locals) and on the *follower's* home instance (whom do my locals follow),
    mirroring how real Mastodon materialises both edges.
    """

    #: NodeInfo software name (Pleroma subclass overrides).
    software = "mastodon"
    #: the statuses endpoint's default page size
    statuses_page_size = 40

    def __init__(
        self,
        domain: str,
        title: str = "",
        topic: str = "general",
        created_at: _dt.date = _dt.date(2016, 10, 6),
        open_registrations: bool = True,
    ) -> None:
        self.domain = domain.lower()
        self.title = title or self.domain
        self.topic = topic
        self.created_at = created_at
        self.open_registrations = open_registrations
        self.down = False
        #: MRF-style federation filter (open by default)
        self.policy = ContentPolicy()

        shard = zlib.crc32(self.domain.encode()) & 0x3FF
        self._ids = SnowflakeGenerator(shard=shard)
        self._accounts: dict[str, Account] = {}  # local username (lower) -> Account
        self._statuses: dict[int, Status] = {}  # local statuses by id
        self._statuses_by_account: dict[str, list[int]] = {}  # acct -> local status ids
        self._original_ids_by_account: dict[str, list[int]] = {}  # ...non-boosts only
        self._remote_statuses: dict[int, Status] = {}  # statuses pushed by federation
        # follow edges seen from this instance:
        self._following: dict[str, set[str]] = {}  # local acct -> accts they follow
        self._followers: dict[str, set[str]] = {}  # local acct -> accts following them
        # any acct -> {local follower acct -> that follower's home list};
        # federation appends into the referenced lists directly, one status
        # delivery being a straight walk over the dict values
        self._followed_by_locals: dict[str, dict[str, list[int]]] = {}
        # local acct -> remote follower domain -> follower count (kept
        # incrementally: federation consults this on every status post)
        self._remote_domains: dict[str, dict[str, int]] = {}
        # local acct -> {local follower acct -> that follower's home list};
        # post_status appends to each referenced list directly instead of
        # re-testing every follower for local-ness per status
        self._follower_homes: dict[str, dict[str, list[int]]] = {}
        # timelines:
        self._home: dict[str, list[int]] = {}  # local acct -> status ids
        self._local_timeline: list[int] = []
        self._federated_timeline: list[int] = []
        self._activity: dict[str, WeeklyActivity] = {}

    # -- directory ---------------------------------------------------------

    def info(self) -> InstanceInfo:
        return InstanceInfo(
            domain=self.domain,
            title=self.title,
            topic=self.topic,
            open_registrations=self.open_registrations,
            created_at=self.created_at,
        )

    # -- accounts ------------------------------------------------------------

    def register(
        self,
        username: str,
        display_name: str = "",
        note: str = "",
        when: _dt.datetime | None = None,
    ) -> Account:
        """Create a local account and count the registration."""
        key = username.lower()
        if key in self._accounts:
            raise DuplicateAccountError(f"{username}@{self.domain} already exists")
        when = when if when is not None else _dt.datetime(2022, 10, 1)
        account = Account(
            account_id=self._ids.next_id(when),
            username=username,
            domain=self.domain,
            display_name=display_name or username,
            created_at=when,
            note=note,
        )
        self._accounts[key] = account
        acct = account.acct
        self._statuses_by_account[acct] = []
        self._original_ids_by_account[acct] = []
        self._following[acct] = set()
        self._followers[acct] = set()
        self._remote_domains[acct] = {}
        self._follower_homes[acct] = {}
        self._home[acct] = []
        self._week(when.date()).registrations += 1
        return account

    def get_account(self, username: str) -> Account:
        try:
            return self._accounts[username.lower()]
        except KeyError:
            raise AccountNotFoundError(f"{username}@{self.domain} not found") from None

    def has_account(self, username: str) -> bool:
        return username.lower() in self._accounts

    def accounts(self) -> Iterator[Account]:
        return iter(self._accounts.values())

    @property
    def user_count(self) -> int:
        return len(self._accounts)

    def active_user_count(self) -> int:
        """Accounts that have not moved away."""
        return sum(1 for account in self._accounts.values() if not account.has_moved)

    # -- follows -------------------------------------------------------------

    def record_following(self, local_acct: str, target_acct: str) -> bool:
        """Record that a local account follows ``target_acct``."""
        self._require_local(local_acct)
        if local_acct == target_acct:
            raise ValueError(f"{local_acct} cannot follow itself")
        followees = self._following[local_acct]
        if target_acct in followees:
            return False
        followees.add(target_acct)
        self._followed_by_locals.setdefault(target_acct, {})[local_acct] = self._home[
            local_acct
        ]
        return True

    def record_follower(self, local_acct: str, follower_acct: str) -> bool:
        """Record that ``follower_acct`` (possibly remote) follows a local account."""
        self._require_local(local_acct)
        followers = self._followers[local_acct]
        if follower_acct in followers:
            return False
        followers.add(follower_acct)
        __, domain = parse_acct(follower_acct)
        if domain != self.domain:
            counts = self._remote_domains[local_acct]
            counts[domain] = counts.get(domain, 0) + 1
        home = self._home.get(follower_acct)
        if home is not None:
            self._follower_homes[local_acct][follower_acct] = home
        return True

    def drop_following(self, local_acct: str, target_acct: str) -> None:
        self._require_local(local_acct)
        self._following[local_acct].discard(target_acct)
        local_followers = self._followed_by_locals.get(target_acct)
        if local_followers is not None:
            local_followers.pop(local_acct, None)

    def drop_follower(self, local_acct: str, follower_acct: str) -> None:
        self._require_local(local_acct)
        followers = self._followers[local_acct]
        if follower_acct not in followers:
            return
        followers.discard(follower_acct)
        __, domain = parse_acct(follower_acct)
        if domain != self.domain:
            counts = self._remote_domains[local_acct]
            remaining = counts.get(domain, 0) - 1
            if remaining > 0:
                counts[domain] = remaining
            else:
                counts.pop(domain, None)
        self._follower_homes[local_acct].pop(follower_acct, None)

    def following_of(self, local_acct: str) -> frozenset[str]:
        self._require_local(local_acct)
        return frozenset(self._following[local_acct])

    def followers_of(self, local_acct: str) -> frozenset[str]:
        self._require_local(local_acct)
        return frozenset(self._followers[local_acct])

    def remote_follower_domains(self, local_acct: str) -> set[str]:
        """Domains subscribed to a local account's statuses.

        Maintained incrementally on follow/unfollow instead of being
        re-derived from the follower set — federation consults this once
        per posted status.
        """
        self._require_local(local_acct)
        return set(self._remote_domains[local_acct])

    # -- statuses ------------------------------------------------------------

    def post_status(
        self,
        username: str,
        text: str,
        when: _dt.datetime,
        application: str = "Web",
        reblog_of_id: int | None = None,
    ) -> Status:
        """Publish a status (or boost) by a local account.

        The status lands on the local timeline and the home timelines of
        local followers; federation to remote followers is the network's job
        (it calls :meth:`receive_remote_status` on subscriber instances).
        """
        account = self.get_account(username)
        status = Status(
            status_id=self._ids.next_id(when),
            account_acct=account.acct,
            created_at=when,
            text=text,
            application=application,
            reblog_of_id=reblog_of_id,
        )
        self._statuses[status.status_id] = status
        self._statuses_by_account[account.acct].append(status.status_id)
        if reblog_of_id is None:
            self._original_ids_by_account[account.acct].append(status.status_id)
        account.last_status_at = when
        self._local_timeline.append(status.status_id)
        sid = status.status_id
        self._home[account.acct].append(sid)
        for home in self._follower_homes[account.acct].values():
            home.append(sid)
        self._week(when.date()).statuses += 1
        return status

    def post_statuses(
        self,
        username: str,
        rows: list[tuple],
    ) -> list[Status]:
        """Publish one local account's statuses in bulk.

        ``rows`` are ``(when, text, application, reblog_of_id, hashtags,
        tokens)`` in chronological order; ``hashtags`` may carry the
        precomputed tag list (``None`` lets :class:`Status` derive it from
        the text) and ``tokens``, when not ``None``, pre-seeds the lazy
        ``Status.token_set`` cache (caller contract: it equals the regex
        derivation over the text — the federation policy screen relies on
        it).  The per-status state transitions are exactly
        :meth:`post_status`'s — the account resolution and timeline/home
        list lookups are hoisted out of the loop, which is what the
        simulation's materialiser needs: it posts each migrant's whole
        timeline per instance in one call.
        """
        account = self.get_account(username)
        acct = account.acct
        statuses_by_id = self._statuses
        by_acct = self._statuses_by_account[acct]
        originals = self._original_ids_by_account[acct]
        local_timeline = self._local_timeline
        home = self._home[acct]
        follower_homes = list(self._follower_homes[acct].values())
        next_id = self._ids.next_id
        week = self._week
        new_status = Status.__new__
        status_cls = Status
        out: list[Status] = []
        for when, text, application, reblog_of_id, hashtags, tokens in rows:
            # direct slot assignment replicating Status.__init__ +
            # __post_init__ (dataclass construction is measurable at this
            # volume): hashtags are extracted only for tagless originals
            # whose text carries a '#', exactly as __post_init__ does
            status = new_status(status_cls)
            status.status_id = sid = next_id(when)
            status.account_acct = acct
            status.created_at = when
            status.text = text
            status.application = application
            status.reblog_of_id = reblog_of_id
            if hashtags:
                status.hashtags = list(hashtags)
            elif reblog_of_id is None and "#" in text:
                status.hashtags = extract_hashtags(text)
            else:
                status.hashtags = []
            status._token_set = tokens
            statuses_by_id[sid] = status
            by_acct.append(sid)
            if reblog_of_id is None:
                originals.append(sid)
            account.last_status_at = when
            local_timeline.append(sid)
            home.append(sid)
            for follower_home in follower_homes:
                follower_home.append(sid)
            week(when.date()).statuses += 1
            out.append(status)
        return out

    def receive_remote_status(self, status: Status) -> bool:
        """Accept a federated status pushed by a remote instance.

        The instance's content policy screens it first (defederation /
        keyword rejection); admitted statuses join the federated timeline
        and the home timelines of the author's local followers — the
        Section 2 semantics: the federated timeline is the union of remote
        statuses retrieved for all locals.  Returns whether it was admitted.

        This runs once per (status, subscriber instance) pair, so the open
        policy — the overwhelmingly common case — is screened without the
        ``admits`` call.
        """
        policy = self.policy
        if (policy.blocked_domains or policy.blocked_keywords) and not policy.admits(status):
            return False
        sid = status.status_id
        remote = self._remote_statuses
        if sid not in remote:
            remote[sid] = status
            self._federated_timeline.append(sid)
        followers = self._followed_by_locals.get(status.account_acct)
        if followers:
            for home in followers.values():
                home.append(sid)
        return True

    def receive_remote_statuses(self, author_acct: str, statuses: list[Status]) -> None:
        """Accept a batch of one author's federated statuses, in order.

        Equivalent to :meth:`receive_remote_status` per status with the
        policy screen, follower lookup and timeline attribute hops hoisted
        out of the loop (all statuses share ``author_acct``, so the local
        follower set is the same for the whole batch).
        """
        policy = self.policy
        if policy.blocked_domains or policy.blocked_keywords:
            admitted = [s for s in statuses if policy.admits(s)]
        else:
            admitted = statuses
        if not admitted:
            return
        remote = self._remote_statuses
        sids = [s.status_id for s in admitted]
        fresh = [sid for sid in sids if sid not in remote]
        if fresh:
            if len(fresh) == len(sids):
                remote.update(zip(sids, admitted))
            else:  # rare duplicate delivery: keep the first-seen object
                for status in admitted:
                    remote.setdefault(status.status_id, status)
            self._federated_timeline.extend(fresh)
        followers = self._followed_by_locals.get(author_acct)
        if followers:
            for home in followers.values():
                home.extend(sids)

    def get_status(self, status_id: int) -> Status:
        status = self._statuses.get(status_id) or self._remote_statuses.get(status_id)
        if status is None:
            raise AccountNotFoundError(f"status {status_id} not on {self.domain}")
        return status

    def statuses_of(self, username: str) -> list[Status]:
        """A local account's statuses in chronological order."""
        account = self.get_account(username)
        ids = self._statuses_by_account[account.acct]
        return [self._statuses[i] for i in ids]

    def original_statuses_of(self, username: str) -> list[Status]:
        """A local account's non-boost statuses in chronological order
        (indexed at post time; the boost picker walks this per boost)."""
        account = self.get_account(username)
        ids = self._original_ids_by_account[account.acct]
        return [self._statuses[i] for i in ids]

    def status_count(self, username: str) -> int:
        account = self.get_account(username)
        return len(self._statuses_by_account[account.acct])

    # -- timelines -----------------------------------------------------------

    def home_timeline(self, username: str) -> list[Status]:
        account = self.get_account(username)
        return [self._lookup(i) for i in self._home[account.acct]]

    def local_timeline(self) -> list[Status]:
        return [self._statuses[i] for i in self._local_timeline]

    def federated_timeline(self) -> list[Status]:
        return [self._remote_statuses[i] for i in self._federated_timeline]

    # -- activity ------------------------------------------------------------

    def record_login(self, day: _dt.date) -> None:
        self._week(day).logins += 1

    def record_aggregate_activity(
        self, day: _dt.date, statuses: int = 0, logins: int = 0, registrations: int = 0
    ) -> None:
        """Inject background load into the weekly counters.

        The world simulates its tracked migrants individually but represents
        the (much larger) untracked user base — Mastodon reported 1M+
        sign-ups against the paper's 136k matched migrants — as aggregate
        counter bumps.  Only the weekly-activity endpoint sees these.
        """
        if min(statuses, logins, registrations) < 0:
            raise ValueError("aggregate activity must be non-negative")
        week = self._week(day)
        week.statuses += statuses
        week.logins += logins
        week.registrations += registrations

    def weekly_activity(self) -> list[WeeklyActivity]:
        """Rows of the weekly-activity endpoint, oldest week first."""
        return [self._activity[w] for w in sorted(self._activity)]

    # -- internals -----------------------------------------------------------

    def _week(self, day: _dt.date) -> WeeklyActivity:
        label = iso_week(day)
        if label not in self._activity:
            self._activity[label] = WeeklyActivity(week=label)
        return self._activity[label]

    def _require_local(self, acct: str) -> None:
        username, domain = parse_acct(acct)
        if domain != self.domain or username.lower() not in self._accounts:
            raise AccountNotFoundError(f"{acct} is not a local account of {self.domain}")

    def _lookup(self, status_id: int) -> Status:
        status = self._statuses.get(status_id)
        if status is None:
            status = self._remote_statuses[status_id]
        return status

    def local_acct(self, username: str) -> str:
        return make_acct(self.get_account(username).username, self.domain)

    def __repr__(self) -> str:
        return f"MastodonInstance({self.domain!r}, users={self.user_count})"
