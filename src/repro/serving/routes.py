"""Route table and query-parameter normalization for the serving API.

Routing is a flat list of literal-prefix patterns — six endpoints do not
need a trie.  The load-bearing piece is :func:`normalize_params`: the
cache layers key on its output, so it must be *canonical* — every raw
query string that means the same request must normalize to the same
tuple, and the normalized form is what handlers echo back in the payload.
That bijection (one normalized key, one payload) is what makes caching
byte-transparent (DESIGN.md §5).

Normalization rules:

- unknown parameters are rejected (400), so typos cannot silently select
  a default-parameter cache entry;
- ``limit`` is clamped to ``[1, MAX_LIMIT]`` and ``offset`` floored at 0;
- hashtags are normalized exactly like the index
  (:func:`repro.util.text.normalize_hashtag`), domains and phrases are
  lowered exactly like :class:`~repro.twitter.search.SearchQuery`;
- dates must be ISO ``YYYY-MM-DD``.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from urllib.parse import parse_qsl

from repro.util.text import normalize_hashtag

#: Default and ceiling for paginated endpoints.
DEFAULT_LIMIT = 50
MAX_LIMIT = 500

#: Endpoint names, the unit the caches, metrics and loadgen all key on.
ENDPOINTS = (
    "healthz",
    "metrics",
    "search",
    "timeline",
    "instances",
    "instance",
    "trends",
)


class RequestError(Exception):
    """A malformed request; carries the HTTP status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(frozen=True)
class RouteMatch:
    """One resolved request: endpoint name plus its path parameter."""

    endpoint: str
    path_param: str | None = None


def resolve(path: str) -> RouteMatch:
    """Map a request path to its endpoint, or raise a 404."""
    if path == "/healthz":
        return RouteMatch("healthz")
    if path == "/metrics":
        return RouteMatch("metrics")
    if path == "/v1/search":
        return RouteMatch("search")
    if path == "/v1/instances":
        return RouteMatch("instances")
    if path.startswith("/v1/instances/"):
        domain = path[len("/v1/instances/") :]
        if not domain or "/" in domain:
            raise RequestError(404, f"no such path: {path}")
        return RouteMatch("instance", domain)
    if path.startswith("/v1/timeline/"):
        uid = path[len("/v1/timeline/") :]
        if not uid.isdigit():
            raise RequestError(404, f"no such path: {path}")
        return RouteMatch("timeline", uid)
    if path == "/v1/trends":
        return RouteMatch("trends")
    raise RequestError(404, f"no such path: {path}")


#: Query parameters each endpoint accepts (anything else is a 400).
_ALLOWED: dict[str, frozenset[str]] = {
    "healthz": frozenset(),
    "metrics": frozenset(),
    "search": frozenset(
        {"q", "hashtag", "domain", "platform", "since", "until", "limit", "offset"}
    ),
    "timeline": frozenset({"platform", "since", "until", "limit", "offset"}),
    "instances": frozenset({"limit", "offset"}),
    "instance": frozenset(),
    "trends": frozenset({"term"}),
}

_PLATFORMS = ("twitter", "mastodon")


def parse_query_string(query_string: str) -> dict[str, str]:
    """Decode a raw query string; repeated keys are a 400 (ambiguous key)."""
    params: dict[str, str] = {}
    for key, value in parse_qsl(query_string, keep_blank_values=True):
        if key in params:
            raise RequestError(400, f"duplicate query parameter: {key}")
        params[key] = value
    return params


def _int_param(params: dict[str, str], name: str, default: int) -> int:
    raw = params.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise RequestError(400, f"{name} must be an integer, got {raw!r}") from None


def _date_param(params: dict[str, str], name: str) -> _dt.date | None:
    raw = params.get(name)
    if raw is None:
        return None
    try:
        return _dt.date.fromisoformat(raw)
    except ValueError:
        raise RequestError(
            400, f"{name} must be an ISO date (YYYY-MM-DD), got {raw!r}"
        ) from None


def normalize_params(match: RouteMatch, params: dict[str, str]) -> dict:
    """The canonical parameter dict for one request (the cache key source).

    Raises :class:`RequestError` on unknown/invalid parameters.  The
    returned dict has a fixed key order per endpoint, so rendering it
    (into payload echoes and cache keys) is deterministic.
    """
    unknown = sorted(set(params) - _ALLOWED[match.endpoint])
    if unknown:
        raise RequestError(
            400,
            f"unknown parameter(s) for {match.endpoint}: {', '.join(unknown)}",
        )
    endpoint = match.endpoint
    if endpoint in ("healthz", "metrics"):
        return {}

    if endpoint == "search":
        platform = params.get("platform", "twitter")
        if platform not in _PLATFORMS:
            raise RequestError(
                400, f"platform must be one of {_PLATFORMS}, got {platform!r}"
            )
        terms = {
            "q": params.get("q", "").lower().strip(),
            "hashtag": normalize_hashtag(params.get("hashtag", "").lstrip("#")),
            "domain": params.get("domain", "").lower().strip(),
        }
        given = [k for k, v in terms.items() if v]
        if len(given) != 1:
            raise RequestError(
                400, "search needs exactly one of q=, hashtag= or domain="
            )
        if platform == "mastodon" and terms["domain"]:
            raise RequestError(400, "domain search is twitter-only")
        since = _date_param(params, "since")
        until = _date_param(params, "until")
        if since is not None and until is not None and until < since:
            raise RequestError(400, f"until {until} precedes since {since}")
        return {
            "platform": platform,
            "kind": given[0],
            "term": terms[given[0]],
            "since": since.isoformat() if since else None,
            "until": until.isoformat() if until else None,
            "limit": max(1, min(_int_param(params, "limit", DEFAULT_LIMIT), MAX_LIMIT)),
            "offset": max(0, _int_param(params, "offset", 0)),
        }

    if endpoint == "timeline":
        platform = params.get("platform", "twitter")
        if platform not in _PLATFORMS:
            raise RequestError(
                400, f"platform must be one of {_PLATFORMS}, got {platform!r}"
            )
        since = _date_param(params, "since")
        until = _date_param(params, "until")
        if since is not None and until is not None and until < since:
            raise RequestError(400, f"until {until} precedes since {since}")
        return {
            "uid": int(match.path_param),
            "platform": platform,
            "since": since.isoformat() if since else None,
            "until": until.isoformat() if until else None,
            "limit": max(1, min(_int_param(params, "limit", DEFAULT_LIMIT), MAX_LIMIT)),
            "offset": max(0, _int_param(params, "offset", 0)),
        }

    if endpoint == "instances":
        return {
            "limit": max(1, min(_int_param(params, "limit", DEFAULT_LIMIT), MAX_LIMIT)),
            "offset": max(0, _int_param(params, "offset", 0)),
        }

    if endpoint == "instance":
        return {"domain": match.path_param.lower()}

    if endpoint == "trends":
        return {"term": params.get("term", "").lower().strip() or None}

    raise RequestError(404, f"unroutable endpoint {endpoint!r}")  # pragma: no cover


def cache_key(endpoint: str, normalized: dict) -> tuple:
    """The hashable cache key of one normalized request."""
    return (endpoint, tuple(sorted(normalized.items())))
