"""The stratified followee crawl (Section 3.3).

The Twitter Follows API allowed 15 requests per 15 minutes, so crawling all
migrants' followee lists was infeasible; the paper crawled a 10% subsample,
stratified for representativity: 5% of users drawn from above the median
followee count and 5% from below.

The sampler reproduces that design, sizes itself against the rate-limit
budget, and crawls both the Twitter followees and the Mastodon following
list of each sampled user.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.collection.dataset import FolloweeRecord, MatchedUser
from repro.errors import FediverseError, TransientError, TwitterError
from repro.fediverse.api import MastodonClient
from repro.twitter.api import TwitterAPI


def stratified_sample(
    matched: list[MatchedUser],
    fraction: float,
    rng: np.random.Generator,
) -> list[MatchedUser]:
    """The paper's median-stratified sample.

    Half the sample comes from users above the median followee count, half
    from below, preserving representativity of the degree distribution.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if not matched:
        return []
    counts = np.array([u.twitter_following for u in matched])
    median = float(np.median(counts))
    above = [u for u, c in zip(matched, counts) if c > median]
    below = [u for u, c in zip(matched, counts) if c <= median]
    half = fraction / 2.0
    target_total = max(1, int(round(fraction * len(matched))))
    n_above = min(len(above), max(0, int(round(half * len(matched)))))
    n_below = min(len(below), target_total - n_above)
    sample: list[MatchedUser] = []
    if n_above:
        idx = rng.choice(len(above), size=n_above, replace=False)
        sample.extend(above[i] for i in idx)
    if n_below:
        idx = rng.choice(len(below), size=n_below, replace=False)
        sample.extend(below[i] for i in idx)
    sample.sort(key=lambda u: u.twitter_user_id)
    return sample


def budgeted_fraction(
    api: TwitterAPI, n_users: int, crawl_days: int = 14, default: float = 0.10
) -> float:
    """The largest sample fraction the Follows-API budget supports.

    The paper's 10% was dictated by exactly this arithmetic; with a small
    simulated population the budget is not binding and ``default`` rules.
    """
    budget = api.limiter.max_requests_within("following", crawl_days * 86_400)
    if n_users == 0:
        return default
    feasible = budget / n_users
    return float(min(default, feasible))


class FolloweeCrawler:
    """Crawls the sampled users' followees on both platforms."""

    def __init__(self, api: TwitterAPI, client: MastodonClient) -> None:
        self._api = api
        self._client = client

    def crawl(
        self,
        sample: list[MatchedUser],
        current_accts: dict[int, str] | None = None,
    ) -> dict[int, FolloweeRecord]:
        """Followee records per sampled user.

        ``current_accts`` maps user ids to their *current* Mastodon account
        (post-move) when known; the crawler otherwise uses the advertised
        account.  Users whose crawl fails on either side are dropped, exactly
        like a real crawl.
        """
        current_accts = current_accts or {}
        records: dict[int, FolloweeRecord] = {}
        for user in sample:
            acct = current_accts.get(user.twitter_user_id, user.mastodon_acct)
            record = self.crawl_one(user, acct)
            if record is not None:
                records[user.twitter_user_id] = record
        return records

    def crawl_one(self, user: MatchedUser, acct: str) -> FolloweeRecord | None:
        """Crawl one sampled user's followees on both platforms.

        ``acct`` is the user's *current* Mastodon account (post-move when
        known).  Returns None when the Twitter side fails — that user is
        dropped, exactly like a real crawl.
        """
        registry = obs.current()
        registry.counter("collection.followees.attempted").inc()
        try:
            twitter_followees = self._api.following_all(user.twitter_user_id)
        except (TwitterError, TransientError):
            registry.counter(
                "collection.followees.failed", side="twitter"
            ).inc()
            return None
        try:
            mastodon_following = self._client.account_following(acct)
        except (FediverseError, TransientError):
            mastodon_following = []
            registry.counter(
                "collection.followees.failed", side="mastodon"
            ).inc()
        registry.counter("collection.followees.ok").inc()
        registry.histogram("collection.followees.twitter_per_user").observe(
            len(twitter_followees)
        )
        return FolloweeRecord(
            twitter_user_id=user.twitter_user_id,
            twitter_followees=tuple(twitter_followees),
            mastodon_following=tuple(mastodon_following),
        )
