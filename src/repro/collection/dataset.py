"""The collected dataset: everything Section 3 gathered, in one container.

A :class:`MigrationDataset` is the sole input to every analysis in
:mod:`repro.analysis` — analyses never reach into the world or its ground
truth, only into what the crawlers could observe, exactly like the paper.

The container serialises to a single JSON document (the paper promises an
anonymised public release of the same shape).
"""

from __future__ import annotations

import datetime as _dt
import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

from repro.fediverse.models import Status
from repro.twitter.models import Tweet


@dataclass(frozen=True)
class MatchedUser:
    """One matched migrant: the §3.1 mapping plus profile facts."""

    twitter_user_id: int
    twitter_username: str
    mastodon_acct: str  # the account the user advertised (their first)
    matched_via: str  # 'metadata' | 'tweet'
    verified: bool
    twitter_created_at: _dt.datetime
    twitter_followers: int
    twitter_following: int

    @property
    def mastodon_username(self) -> str:
        return self.mastodon_acct.split("@", 1)[0]

    @property
    def mastodon_domain(self) -> str:
        return self.mastodon_acct.split("@", 1)[1]

    @property
    def same_username(self) -> bool:
        return self.twitter_username.lower() == self.mastodon_username.lower()


@dataclass(frozen=True)
class MastodonAccountRecord:
    """What the Mastodon crawler learned about one migrant's account(s).

    When the advertised account had moved, the crawler followed ``moved_to``
    and recorded the successor too; the successor's ``created_at`` dates the
    instance switch.
    """

    first_acct: str
    first_created_at: _dt.datetime
    moved_to: str | None
    second_created_at: _dt.datetime | None
    followers: int
    following: int
    statuses: int

    @property
    def first_domain(self) -> str:
        return self.first_acct.split("@", 1)[1]

    @property
    def second_domain(self) -> str | None:
        if self.moved_to is None:
            return None
        return self.moved_to.split("@", 1)[1]

    @property
    def switched(self) -> bool:
        return self.moved_to is not None


@dataclass(frozen=True)
class FolloweeRecord:
    """One sampled user's followee crawl (§3.3), both platforms."""

    twitter_user_id: int
    twitter_followees: tuple[int, ...]
    mastodon_following: tuple[str, ...]


@dataclass
class CrawlCoverage:
    """Success/failure accounting for a timeline crawl (§3.2).

    ``unreachable`` counts users lost to *transient* trouble the resilience
    layer could not retry through (timeouts, 5xx, truncated pages from the
    fault plane) — distinct from ``instance_down``, which records permanent
    instance unavailability, the paper's 11.58%.  The reconciliation
    invariant ``attempted == ok + every failure bucket`` holds under any
    fault plan (enforced by ``tests/collection/test_fault_pipeline.py``).
    """

    ok: int = 0
    suspended: int = 0
    deleted: int = 0
    protected: int = 0
    no_statuses: int = 0
    instance_down: int = 0
    unreachable: int = 0

    @property
    def attempted(self) -> int:
        return (
            self.ok
            + self.suspended
            + self.deleted
            + self.protected
            + self.no_statuses
            + self.instance_down
            + self.unreachable
        )

    def rate(self, outcome: str) -> float:
        """Percentage of attempts ending in ``outcome`` (e.g. ``'ok'``)."""
        if self.attempted == 0:
            return 0.0
        return 100.0 * getattr(self, outcome) / self.attempted

    def merge(self, other: "CrawlCoverage") -> "CrawlCoverage":
        """Field-wise sum of two coverages (per-shard counts fold up).

        Plain addition per bucket, so merging is associative and
        commutative — the shard merge order cannot change the accounting.
        """
        return CrawlCoverage(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    __add__ = merge

    def record(self, bucket: str) -> None:
        """Count one attempt ending in ``bucket`` (e.g. ``'instance_down'``)."""
        setattr(self, bucket, getattr(self, bucket) + 1)


@dataclass
class MigrationDataset:
    """Everything the pipeline collected."""

    #: the instance index the pipeline started from
    instance_domains: list[str] = field(default_factory=list)
    #: the §3.1 migration-tweet corpus
    collected_tweets: list[Tweet] = field(default_factory=list)
    collected_user_count: int = 0
    #: matched migrants, by Twitter user id
    matched: dict[int, MatchedUser] = field(default_factory=dict)
    #: Mastodon account records, by Twitter user id
    accounts: dict[int, MastodonAccountRecord] = field(default_factory=dict)
    #: crawled timelines, by Twitter user id
    twitter_timelines: dict[int, list[Tweet]] = field(default_factory=dict)
    mastodon_timelines: dict[int, list[Status]] = field(default_factory=dict)
    twitter_coverage: CrawlCoverage = field(default_factory=CrawlCoverage)
    mastodon_coverage: CrawlCoverage = field(default_factory=CrawlCoverage)
    #: §3.3 followee sample, by Twitter user id
    followee_sample: dict[int, FolloweeRecord] = field(default_factory=dict)
    #: weekly activity rows per instance domain
    weekly_activity: dict[str, list[dict]] = field(default_factory=dict)
    #: search-interest series per term (Figure 1 inputs)
    trends: dict[str, list[tuple[str, int]]] = field(default_factory=dict)
    #: incremental-plane manifest: monotonic snapshot version plus the
    #: observer-clock high-water mark that produced it.  ``None`` on
    #: unclocked (one-shot) collections, whose bytes predate the manifest.
    dataset_version: int | None = None
    clock: _dt.date | None = None

    # -- convenience views -------------------------------------------------------

    @property
    def migrant_count(self) -> int:
        return len(self.matched)

    def matched_users(self) -> list[MatchedUser]:
        return [self.matched[uid] for uid in sorted(self.matched)]

    def account_of(self, user_id: int) -> MastodonAccountRecord | None:
        return self.accounts.get(user_id)

    def instance_populations(self) -> dict[str, int]:
        """Matched migrants per (first) instance domain."""
        counts: dict[str, int] = {}
        for user in self.matched.values():
            domain = user.mastodon_domain
            counts[domain] = counts.get(domain, 0) + 1
        return counts

    def switchers(self) -> list[int]:
        """User ids whose Mastodon account moved instance."""
        return sorted(
            uid for uid, record in self.accounts.items() if record.switched
        )

    def mastodon_join_date(self, user_id: int) -> _dt.date | None:
        """The date the user joined Mastodon (their first account)."""
        record = self.accounts.get(user_id)
        if record is None:
            return None
        return record.first_created_at.date()

    # -- serialisation -------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(self._to_doc(), indent=None, separators=(",", ":"))

    def save(self, path: str | Path) -> None:
        """Write to ``path``; the extension picks the format.

        ``.npz`` selects the compact binary column format
        (:mod:`repro.collection.binfmt`); anything else writes the JSON
        document.  Both round-trip to an equal dataset.
        """
        path = Path(path)
        if path.suffix == ".npz":
            from repro.collection.binfmt import save_npz

            save_npz(self, path)
        else:
            path.write_text(self.to_json())

    @classmethod
    def from_json(cls, text: str) -> "MigrationDataset":
        return cls._from_doc(json.loads(text))

    @classmethod
    def load(cls, path: str | Path, lazy: bool = False) -> "MigrationDataset":
        """Read a dataset saved by :meth:`save`, either format.

        ``lazy=True`` (``.npz`` only) defers the three big corpora —
        ``collected_tweets`` and both timeline dicts — until first
        access, so a serving process answers header-only endpoints
        before decoding a single timeline column.  Contents are
        identical either way; JSON loads ignore the flag.
        """
        path = Path(path)
        if path.suffix == ".npz":
            from repro.collection.binfmt import load_npz

            return load_npz(path, lazy=lazy)
        return cls.from_json(path.read_text())

    def manifest(self) -> dict | None:
        """The version/clock stamp, or None for unclocked snapshots."""
        if self.dataset_version is None:
            return None
        return {
            "dataset_version": self.dataset_version,
            "clock": self.clock.isoformat() if self.clock is not None else None,
        }

    def _to_doc(self) -> dict:
        doc: dict = {"version": 1}
        manifest = self.manifest()
        if manifest is not None:
            # only clocked snapshots carry the stamp, so unclocked datasets
            # keep their pre-manifest golden bytes
            doc["manifest"] = manifest
        doc.update(self._body_doc())
        return doc

    def _body_doc(self) -> dict:
        return {
            "instance_domains": self.instance_domains,
            "collected_tweets": [_tweet_doc(t) for t in self.collected_tweets],
            "collected_user_count": self.collected_user_count,
            "matched": {
                str(uid): _matched_doc(m) for uid, m in self.matched.items()
            },
            "accounts": {
                str(uid): _account_doc(a) for uid, a in self.accounts.items()
            },
            "twitter_timelines": {
                str(uid): [_tweet_doc(t) for t in tweets]
                for uid, tweets in self.twitter_timelines.items()
            },
            "mastodon_timelines": {
                str(uid): [_status_doc(s) for s in statuses]
                for uid, statuses in self.mastodon_timelines.items()
            },
            "twitter_coverage": _coverage_doc(self.twitter_coverage),
            "mastodon_coverage": _coverage_doc(self.mastodon_coverage),
            "followee_sample": {
                str(uid): {
                    "twitter_followees": list(r.twitter_followees),
                    "mastodon_following": list(r.mastodon_following),
                }
                for uid, r in self.followee_sample.items()
            },
            "weekly_activity": self.weekly_activity,
            "trends": self.trends,
        }

    @classmethod
    def _from_doc(cls, doc: dict) -> "MigrationDataset":
        if doc.get("version") != 1:
            raise ValueError(f"unsupported dataset version {doc.get('version')!r}")
        dataset = cls()
        manifest = doc.get("manifest")
        if manifest is not None:
            dataset.dataset_version = int(manifest["dataset_version"])
            if manifest.get("clock"):
                dataset.clock = _dt.date.fromisoformat(manifest["clock"])
        dataset.instance_domains = list(doc["instance_domains"])
        dataset.collected_tweets = [_tweet_from(d) for d in doc["collected_tweets"]]
        dataset.collected_user_count = int(doc["collected_user_count"])
        dataset.matched = {
            int(uid): _matched_from(d) for uid, d in doc["matched"].items()
        }
        dataset.accounts = {
            int(uid): _account_from(d) for uid, d in doc["accounts"].items()
        }
        dataset.twitter_timelines = {
            int(uid): [_tweet_from(d) for d in tweets]
            for uid, tweets in doc["twitter_timelines"].items()
        }
        dataset.mastodon_timelines = {
            int(uid): [_status_from(d) for d in statuses]
            for uid, statuses in doc["mastodon_timelines"].items()
        }
        dataset.twitter_coverage = CrawlCoverage(**doc["twitter_coverage"])
        dataset.mastodon_coverage = CrawlCoverage(**doc["mastodon_coverage"])
        dataset.followee_sample = {
            int(uid): FolloweeRecord(
                twitter_user_id=int(uid),
                twitter_followees=tuple(d["twitter_followees"]),
                mastodon_following=tuple(d["mastodon_following"]),
            )
            for uid, d in doc["followee_sample"].items()
        }
        dataset.weekly_activity = {
            domain: list(rows) for domain, rows in doc["weekly_activity"].items()
        }
        dataset.trends = {
            term: [(day, int(v)) for day, v in series]
            for term, series in doc["trends"].items()
        }
        return dataset


def _coverage_doc(coverage: CrawlCoverage) -> dict:
    """Serialise coverage; a zero ``unreachable`` is omitted so fault-free
    datasets stay byte-identical to the pre-resilience format."""
    doc = asdict(coverage)
    if not doc.get("unreachable"):
        doc.pop("unreachable", None)
    return doc


def _tweet_doc(tweet: Tweet) -> dict:
    return {
        "id": tweet.tweet_id,
        "author_id": tweet.author_id,
        "created_at": tweet.created_at.isoformat(),
        "text": tweet.text,
        "source": tweet.source,
        "is_retweet": tweet.is_retweet,
    }


def _tweet_from(doc: dict) -> Tweet:
    return Tweet(
        tweet_id=doc["id"],
        author_id=doc["author_id"],
        created_at=_dt.datetime.fromisoformat(doc["created_at"]),
        text=doc["text"],
        source=doc["source"],
        is_retweet=doc.get("is_retweet", False),
    )


def _status_doc(status: Status) -> dict:
    return {
        "id": status.status_id,
        "acct": status.account_acct,
        "created_at": status.created_at.isoformat(),
        "text": status.text,
        "application": status.application,
        "reblog_of_id": status.reblog_of_id,
    }


def _status_from(doc: dict) -> Status:
    return Status(
        status_id=doc["id"],
        account_acct=doc["acct"],
        created_at=_dt.datetime.fromisoformat(doc["created_at"]),
        text=doc["text"],
        application=doc.get("application", "Web"),
        reblog_of_id=doc.get("reblog_of_id"),
    )


def _matched_doc(m: MatchedUser) -> dict:
    return {
        "twitter_user_id": m.twitter_user_id,
        "twitter_username": m.twitter_username,
        "mastodon_acct": m.mastodon_acct,
        "matched_via": m.matched_via,
        "verified": m.verified,
        "twitter_created_at": m.twitter_created_at.isoformat(),
        "twitter_followers": m.twitter_followers,
        "twitter_following": m.twitter_following,
    }


def _matched_from(doc: dict) -> MatchedUser:
    return MatchedUser(
        twitter_user_id=doc["twitter_user_id"],
        twitter_username=doc["twitter_username"],
        mastodon_acct=doc["mastodon_acct"],
        matched_via=doc["matched_via"],
        verified=doc["verified"],
        twitter_created_at=_dt.datetime.fromisoformat(doc["twitter_created_at"]),
        twitter_followers=doc["twitter_followers"],
        twitter_following=doc["twitter_following"],
    )


def _account_doc(a: MastodonAccountRecord) -> dict:
    return {
        "first_acct": a.first_acct,
        "first_created_at": a.first_created_at.isoformat(),
        "moved_to": a.moved_to,
        "second_created_at": (
            a.second_created_at.isoformat() if a.second_created_at else None
        ),
        "followers": a.followers,
        "following": a.following,
        "statuses": a.statuses,
    }


def _account_from(doc: dict) -> MastodonAccountRecord:
    return MastodonAccountRecord(
        first_acct=doc["first_acct"],
        first_created_at=_dt.datetime.fromisoformat(doc["first_created_at"]),
        moved_to=doc["moved_to"],
        second_created_at=(
            _dt.datetime.fromisoformat(doc["second_created_at"])
            if doc["second_created_at"]
            else None
        ),
        followers=doc["followers"],
        following=doc["following"],
        statuses=doc["statuses"],
    )
