"""Directed follower graph.

Edges point from follower to followee (``alice -> bob`` means alice follows
bob).  The graph is the substrate for both the contagion model (a user's
migration hazard depends on the migrated fraction of their followees) and the
Follows API crawl of Section 3.3.
"""

from __future__ import annotations

from collections.abc import Iterable


class FollowGraph:
    """Adjacency-set digraph keyed by integer user ids."""

    def __init__(self) -> None:
        self._followees: dict[int, set[int]] = {}
        self._followers: dict[int, set[int]] = {}
        self._edge_count = 0

    def add_user(self, user_id: int) -> None:
        """Register a node (idempotent)."""
        self._followees.setdefault(user_id, set())
        self._followers.setdefault(user_id, set())

    def follow(self, follower: int, followee: int) -> bool:
        """Add edge ``follower -> followee``; returns False if it existed."""
        if follower == followee:
            raise ValueError(f"user {follower} cannot follow themselves")
        self.add_user(follower)
        self.add_user(followee)
        if followee in self._followees[follower]:
            return False
        self._followees[follower].add(followee)
        self._followers[followee].add(follower)
        self._edge_count += 1
        return True

    def unfollow(self, follower: int, followee: int) -> bool:
        """Remove edge ``follower -> followee``; returns False if absent."""
        if followee not in self._followees.get(follower, ()):
            return False
        self._followees[follower].discard(followee)
        self._followers[followee].discard(follower)
        self._edge_count -= 1
        return True

    def follows(self, follower: int, followee: int) -> bool:
        return followee in self._followees.get(follower, ())

    def followees_of(self, user_id: int) -> frozenset[int]:
        """Accounts ``user_id`` follows."""
        return frozenset(self._followees.get(user_id, ()))

    def followers_of(self, user_id: int) -> frozenset[int]:
        """Accounts following ``user_id``."""
        return frozenset(self._followers.get(user_id, ()))

    def followee_count(self, user_id: int) -> int:
        return len(self._followees.get(user_id, ()))

    def follower_count(self, user_id: int) -> int:
        return len(self._followers.get(user_id, ()))

    def users(self) -> Iterable[int]:
        return self._followees.keys()

    @property
    def user_count(self) -> int:
        return len(self._followees)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` for structural analyses."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self._followees)
        for follower, followees in self._followees.items():
            graph.add_edges_from((follower, f) for f in followees)
        return graph
