"""Tests for repro.serving.app: endpoint behavior over the small dataset."""

import json

import pytest

from repro import obs
from repro.serving.app import ServingApp, render


def get_json(app, target):
    status, body = app.get(target)
    return status, json.loads(body)


class TestRender:
    def test_compact_deterministic_bytes(self):
        assert render({"b": 1, "a": [1, 2]}) == b'{"b":1,"a":[1,2]}'


class TestEndpoints:
    def test_healthz_reports_counts(self, serving_app, small_dataset):
        status, payload = get_json(serving_app, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["migrants"] == len(small_dataset.matched)
        assert payload["instances"] == len(small_dataset.instance_domains)

    def test_search_pagination(self, serving_app):
        status, full = get_json(serving_app, "/v1/search?q=mastodon&limit=500")
        assert status == 200
        assert len(full["rows"]) == min(full["total"], 500)
        _, page = get_json(serving_app, "/v1/search?q=mastodon&limit=2&offset=1")
        assert page["total"] == full["total"]
        assert page["rows"] == full["rows"][1:3]

    def test_search_rows_ascend_by_tweet_id(self, serving_app):
        _, payload = get_json(serving_app, "/v1/search?q=mastodon&limit=500")
        ids = [row["id"] for row in payload["rows"]]
        assert ids == sorted(ids)

    def test_search_window_filters_days(self, serving_app):
        _, windowed = get_json(
            serving_app,
            "/v1/search?q=mastodon&since=2022-11-01&until=2022-11-30&limit=500",
        )
        assert windowed["rows"], "window should overlap the migration burst"
        assert all(
            "2022-11-01" <= row["day"] <= "2022-11-30" for row in windowed["rows"]
        )

    def test_timeline_roundtrip(self, serving_app, small_dataset):
        uid = next(iter(small_dataset.twitter_timelines))
        status, payload = get_json(serving_app, f"/v1/timeline/{uid}?limit=500")
        assert status == 200
        assert payload["total"] == len(small_dataset.twitter_timelines[uid])
        days = [row["day"] for row in payload["rows"]]
        assert days == sorted(days)

    def test_timeline_unknown_uid_404(self, serving_app):
        status, payload = get_json(serving_app, "/v1/timeline/999999999999")
        assert status == 404
        assert payload["status"] == 404

    def test_instances_ranked_by_population(self, serving_app):
        _, payload = get_json(serving_app, "/v1/instances?limit=500")
        users = [row["users"] for row in payload["rows"]]
        assert users == sorted(users, reverse=True)

    def test_instance_detail(self, serving_app):
        _, listing = get_json(serving_app, "/v1/instances?limit=1")
        top = listing["rows"][0]
        status, payload = get_json(serving_app, f"/v1/instances/{top['domain']}")
        assert status == 200
        assert payload["users"] == top["users"]
        assert isinstance(payload["weekly"], list)

    def test_trends_series(self, serving_app, small_dataset):
        _, payload = get_json(serving_app, "/v1/trends")
        assert payload["terms"] == sorted(small_dataset.trends)
        _, one = get_json(serving_app, "/v1/trends?term=mastodon")
        assert one["terms"] == ["Mastodon"]
        assert list(one["series"]) == ["Mastodon"]

    def test_trends_term_is_case_insensitive(self, serving_app):
        a = serving_app.get("/v1/trends?term=Mastodon")
        b = serving_app.get("/v1/trends?term=mastodon")
        assert a == b
        assert a[0] == 200


class TestErrors:
    def test_unknown_path_404(self, serving_app):
        status, payload = get_json(serving_app, "/v2/search")
        assert status == 404

    def test_bad_params_400(self, serving_app):
        status, payload = get_json(serving_app, "/v1/search?limit=10")
        assert status == 400
        assert "error" in payload

    def test_non_get_405(self, serving_app):
        status, _ = serving_app.handle("/healthz", "", method="POST")
        assert status == 405

    def test_errors_are_counted(self, small_dataset):
        app = ServingApp(small_dataset, columnar=False, caches=False)
        app.get("/nope")
        assert app.error_count == 1
        assert app.request_count == 1


class TestCachesAndMetrics:
    def test_metrics_reports_cache_stats(self, small_dataset):
        app = ServingApp(small_dataset)
        app.warm()
        app.get("/v1/instances")
        app.get("/v1/instances")
        status, payload = get_json(app, "/metrics")
        assert status == 200
        assert payload["caches"]["enabled"] is True
        assert payload["caches"]["payload"]["hits"] == 1
        assert payload["caches"]["result"]["entries"] == 1

    def test_latency_histograms_when_registry_active(self, small_dataset):
        with obs.use(obs.MetricsRegistry()) as registry:
            app = ServingApp(small_dataset)
            app.warm()
            app.get("/v1/instances")
            status, payload = get_json(app, "/metrics")
        assert payload["latency_seconds"]["instances"]["count"] == 1
        requests = registry.counters_by_label("serving.requests", "endpoint")
        assert requests["instances"] == 1

    def test_cache_stats_includes_frames_and_index(self, serving_app):
        stats = serving_app.cache_stats()
        assert stats["enabled"] is True
        assert "products_built" in stats["frames_results"]
        assert stats["index"]["tags"] > 0

    def test_caches_disabled_app_never_fills(self, small_dataset):
        app = ServingApp(small_dataset, caches=False)
        app.warm()
        app.get("/v1/instances")
        app.get("/v1/instances")
        stats = app.cache_stats()
        assert stats["enabled"] is False


class TestAsgi:
    def test_http_scope_roundtrip(self, serving_app):
        import asyncio

        sent = []

        async def drive():
            scope = {
                "type": "http",
                "method": "GET",
                "path": "/healthz",
                "query_string": b"",
            }

            async def receive():
                return {"type": "http.request", "body": b"", "more_body": False}

            async def send(message):
                sent.append(message)

            await serving_app(scope, receive, send)

        asyncio.run(drive())
        start = next(m for m in sent if m["type"] == "http.response.start")
        body = next(m for m in sent if m["type"] == "http.response.body")
        assert start["status"] == 200
        assert json.loads(body["body"])["status"] == "ok"
