"""Tests for repro.obs.memory: per-span RSS and tracemalloc accounting."""

import pytest

from repro.obs.memory import MemoryAccountant, rss_snapshot, track_memory
from repro.obs.metrics import NOOP, MetricsRegistry

# a size large enough to dominate interpreter noise and too large for
# CPython to constant-fold at compile time
CHUNK = 4_000_000


def _allocate(n: int = CHUNK) -> bytearray:
    return bytearray(n)


class TestRssSnapshot:
    def test_returns_plausible_values_or_none(self):
        current, peak = rss_snapshot()
        # graceful-degradation contract: values are positive ints or None
        if current is not None:
            assert isinstance(current, int) and current > 0
        if peak is not None:
            assert isinstance(peak, int) and peak >= (current or 0)

    def test_linux_proc_path(self):
        import sys

        if not sys.platform.startswith("linux"):
            pytest.skip("reads /proc/self/status")
        current, peak = rss_snapshot()
        assert current is not None and peak is not None
        # a Python process is comfortably over a megabyte resident
        assert current > 1_000_000
        assert peak >= current


class TestRssAccounting:
    def test_spans_record_peak_and_delta(self):
        registry = MetricsRegistry()
        registry.enable_memory(rss=True)
        with registry.span("stage") as span:
            _allocate()
        if span.peak_rss_bytes is None:
            pytest.skip("no RSS source on this platform")
        assert span.peak_rss_bytes > 0
        assert "peak_rss_bytes" in span.memory_fields()
        assert span.to_dict()["peak_rss_bytes"] == span.peak_rss_bytes

    def test_unaccounted_registry_leaves_fields_none(self):
        registry = MetricsRegistry()
        with registry.span("stage") as span:
            _allocate()
        assert span.memory_fields() == {}
        assert "peak_rss_bytes" not in span.to_dict()


class TestTracemallocAccounting:
    def test_retained_allocation_shows_in_delta(self):
        registry = MetricsRegistry()
        with track_memory(registry, trace_allocs=True):
            with registry.span("stage") as span:
                retained = _allocate()
        assert span.tracemalloc_delta_bytes >= CHUNK
        assert span.tracemalloc_peak_bytes >= CHUNK
        del retained

    def test_released_allocation_peaks_without_retention(self):
        registry = MetricsRegistry()
        with track_memory(registry, trace_allocs=True):
            with registry.span("stage") as span:
                _allocate()  # dropped immediately
        assert span.tracemalloc_peak_bytes >= CHUNK
        assert span.tracemalloc_delta_bytes < CHUNK

    def test_nested_spans_fold_child_peak_into_parent(self):
        registry = MetricsRegistry()
        with track_memory(registry, trace_allocs=True):
            with registry.span("parent") as parent:
                with registry.span("child") as child:
                    _allocate()
                with registry.span("sibling") as sibling:
                    pass
        assert child.tracemalloc_peak_bytes >= CHUNK
        # nesting: pressure inside the child is pressure the parent saw
        assert parent.tracemalloc_peak_bytes >= child.tracemalloc_peak_bytes
        # the sibling opened after the child's memory was released and the
        # peak counter reset, so it does not inherit the child's peak
        assert sibling.tracemalloc_peak_bytes < CHUNK

    def test_parent_own_allocation_after_child(self):
        registry = MetricsRegistry()
        with track_memory(registry, trace_allocs=True):
            with registry.span("parent") as parent:
                with registry.span("child"):
                    pass
                retained = _allocate()
        assert parent.tracemalloc_peak_bytes >= CHUNK
        del retained

    def test_track_memory_restores_previous_accountant(self):
        registry = MetricsRegistry()
        first = registry.enable_memory(rss=False)
        with track_memory(registry, trace_allocs=True) as inner:
            assert registry.tracer.memory is inner
        assert registry.tracer.memory is first

    def test_track_memory_noop_on_null_registry(self):
        with track_memory(NOOP, trace_allocs=True) as accountant:
            assert accountant is None

    def test_close_stops_only_own_tracing(self):
        import tracemalloc

        was_tracing = tracemalloc.is_tracing()
        accountant = MemoryAccountant(rss=False, trace_allocs=True)
        assert tracemalloc.is_tracing()
        accountant.close()
        assert tracemalloc.is_tracing() == was_tracing
        # closing twice is fine
        accountant.close()


class TestNoPerturbation:
    def test_accounting_does_not_touch_numpy_rng(self):
        import numpy as np

        draws_plain = np.random.default_rng(13).random(8)
        registry = MetricsRegistry()
        with track_memory(registry, trace_allocs=True):
            with registry.span("stage"):
                draws_tracked = np.random.default_rng(13).random(8)
        assert (draws_plain == draws_tracked).all()
