"""Errors raised by the simulated Twitter APIs.

The hierarchy mirrors the HTTP failure modes the paper's crawler had to
handle when gathering timelines (Section 3.2): suspended accounts, deleted or
deactivated accounts, protected tweets, and rate limiting.
"""

from repro.errors import ReproError


class TwitterError(ReproError):
    """Base class for Twitter API errors."""


class NotFoundError(TwitterError):
    """The user or tweet does not exist (deleted/deactivated accounts)."""


class SuspendedAccountError(TwitterError):
    """The account was suspended by the platform."""


class ProtectedAccountError(TwitterError):
    """The account's tweets are protected and invisible to the crawler."""


class RateLimitExceeded(TwitterError):
    """The caller exhausted its request budget for an endpoint window."""

    def __init__(self, endpoint: str, retry_after: int) -> None:
        super().__init__(f"rate limit exceeded for {endpoint}; retry after {retry_after}s")
        self.endpoint = endpoint
        self.retry_after = retry_after
