"""Tests for repro.analysis.hashtags."""

import datetime as dt

import pytest

from repro.analysis.hashtags import top_hashtags
from repro.collection.dataset import MigrationDataset
from repro.errors import AnalysisError
from tests.conftest import make_status, make_tweet

DAY = dt.date(2022, 11, 5)


@pytest.fixture
def dataset(tiny_dataset):
    tiny_dataset.twitter_timelines = {
        1: [
            make_tweet(1, 1, DAY, "tune in #NowPlaying"),
            make_tweet(2, 1, DAY, "more music #NowPlaying #BBC6Music"),
        ],
        2: [make_tweet(3, 2, DAY, "politics #StandWithUkraine")],
    }
    tiny_dataset.mastodon_timelines = {
        1: [
            make_status(4, "alice@mastodon.social", DAY, "hello #fediverse"),
            make_status(5, "alice@mastodon.social", DAY, "wave two #TwitterMigration #fediverse"),
        ],
        2: [make_status(6, "bob@mastodon.social", DAY, "also #nowplaying here")],
    }
    return tiny_dataset


class TestTopHashtags:
    def test_joint_counting(self, dataset):
        result = top_hashtags(dataset)
        rows = {r.hashtag: r for r in result.rows}
        assert rows["nowplaying"].twitter == 2
        assert rows["nowplaying"].mastodon == 1
        assert rows["fediverse"].mastodon == 2
        assert rows["fediverse"].twitter == 0

    def test_rank_by_total(self, dataset):
        result = top_hashtags(dataset)
        totals = [r.total for r in result.rows]
        assert totals == sorted(totals, reverse=True)

    def test_case_normalised(self, dataset):
        result = top_hashtags(dataset)
        tags = [r.hashtag for r in result.rows]
        assert "nowplaying" in tags
        assert "NowPlaying" not in tags

    def test_dominant_platform(self, dataset):
        result = top_hashtags(dataset)
        rows = {r.hashtag: r for r in result.rows}
        assert rows["nowplaying"].dominant_platform == "twitter"
        assert rows["fediverse"].dominant_platform == "mastodon"

    def test_distinct_counts(self, dataset):
        result = top_hashtags(dataset)
        assert result.distinct_twitter == 3
        assert result.distinct_mastodon == 3

    def test_k_truncation(self, dataset):
        assert len(top_hashtags(dataset, k=2).rows) == 2

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            top_hashtags(MigrationDataset())


class TestOnSimulatedData:
    def test_migration_tags_dominate_mastodon(self, small_dataset):
        """Fig. 15's core contrast.

        The Twitter corpus is several times larger (two months of tweets vs
        weeks of statuses), so the comparison uses per-platform *shares*
        rather than absolute counts, and asks for majority dominance.
        """
        result = top_hashtags(small_dataset, k=30)
        rows = {r.hashtag: r for r in result.rows}
        twitter_total = sum(r.twitter for r in result.rows) or 1
        mastodon_total = sum(r.mastodon for r in result.rows) or 1
        migration_tags = {"fediverse", "twittermigration", "mastodon",
                          "introduction", "newhere", "mastodonmigration",
                          "feditips"}
        present = migration_tags & set(rows)
        assert present
        dominant = sum(
            1
            for tag in present
            if rows[tag].mastodon / mastodon_total
            > rows[tag].twitter / twitter_total
        )
        assert dominant > len(present) / 2

    def test_twitter_has_diverse_tags(self, small_dataset):
        result = top_hashtags(small_dataset, k=30)
        twitter_led = [r for r in result.rows if r.dominant_platform == "twitter"]
        assert len(twitter_led) >= 5
