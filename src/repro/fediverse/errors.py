"""Errors raised by the simulated fediverse.

The classes are defined in :mod:`repro.errors` (the package's unified error
surface) and re-exported here for compatibility.
"""

from repro.errors import (
    AccountNotFoundError,
    CircuitOpenError,
    DuplicateAccountError,
    FederationError,
    FediverseError,
    InstanceDownError,
    InstanceNotFoundError,
)

__all__ = [
    "FediverseError",
    "InstanceNotFoundError",
    "InstanceDownError",
    "CircuitOpenError",
    "AccountNotFoundError",
    "DuplicateAccountError",
    "FederationError",
]
