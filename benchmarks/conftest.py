"""Benchmark fixtures.

One world + dataset pair is built per benchmark session at ``BENCH_SCALE``
(override with the ``REPRO_BENCH_SCALE`` environment variable) and every
figure benchmark measures the cost of regenerating its figure from that
dataset.  The per-figure shape assertions keep the benchmarks honest: a
benchmark that regenerates the wrong figure is worthless however fast.
"""

from __future__ import annotations

import os

import pytest

from repro.collection.dataset import MigrationDataset
from repro.collection.pipeline import collect_dataset
from repro.simulation.world import World, build_world

BENCH_SEED = 7
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.01"))


@pytest.fixture(scope="session")
def bench_world() -> World:
    return build_world(seed=BENCH_SEED, scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def bench_dataset(bench_world: World) -> MigrationDataset:
    return collect_dataset(bench_world)
