"""Integration tests for the full collection pipeline (shared dataset)."""

from repro.collection.dataset import MigrationDataset
from repro.simulation.world import World
from repro.util.clock import TWEET_COLLECTION_END, TWEET_COLLECTION_START


class TestPipelineOutput:
    def test_matches_are_real_migrants(
        self, small_world: World, small_dataset: MigrationDataset
    ):
        """Every matched user must be a ground-truth migrant (no false
        positives from chatter mentioning other people's handles)."""
        truth = {a.user_id for a in small_world.migrants}
        assert set(small_dataset.matched) <= truth

    def test_matches_point_at_the_right_account(
        self, small_world: World, small_dataset: MigrationDataset
    ):
        for uid, matched in small_dataset.matched.items():
            agent = small_world.agents[uid]
            assert matched.mastodon_acct == agent.first_acct

    def test_recall_is_substantial(
        self, small_world: World, small_dataset: MigrationDataset
    ):
        """The methodology misses some migrants (like the paper) but must
        find the clear majority of them."""
        recall = len(small_dataset.matched) / len(small_world.migrants)
        assert 0.5 < recall < 1.0

    def test_collected_tweets_inside_window(self, small_dataset: MigrationDataset):
        for tweet in small_dataset.collected_tweets:
            assert TWEET_COLLECTION_START <= tweet.created_date <= TWEET_COLLECTION_END

    def test_more_authors_than_matches(self, small_dataset: MigrationDataset):
        """Chatter inflates the author pool well beyond matched migrants
        (paper: 1.02M authors vs 136k matches)."""
        assert small_dataset.collected_user_count > small_dataset.migrant_count

    def test_timeline_coverage_accounting_consistent(
        self, small_dataset: MigrationDataset
    ):
        assert (
            small_dataset.twitter_coverage.attempted == small_dataset.migrant_count
        )
        assert len(small_dataset.twitter_timelines) == small_dataset.twitter_coverage.ok

    def test_mastodon_timelines_only_for_resolved_accounts(
        self, small_dataset: MigrationDataset
    ):
        assert set(small_dataset.mastodon_timelines) <= set(small_dataset.accounts)

    def test_followee_sample_size(self, small_dataset: MigrationDataset):
        """~10% stratified sample plus the switcher boost."""
        n = small_dataset.migrant_count
        sample = len(small_dataset.followee_sample)
        switchers = len(small_dataset.switchers())
        assert sample >= int(0.06 * n)
        assert sample <= int(0.16 * n) + switchers + 1

    def test_followee_sample_is_subset_of_matched(
        self, small_dataset: MigrationDataset
    ):
        assert set(small_dataset.followee_sample) <= set(small_dataset.matched)

    def test_switchers_present_in_followee_sample(
        self, small_dataset: MigrationDataset
    ):
        sampled = set(small_dataset.followee_sample)
        for uid in small_dataset.switchers():
            assert uid in sampled

    def test_weekly_activity_covers_matched_instances(
        self, small_dataset: MigrationDataset
    ):
        populated = set(small_dataset.instance_populations())
        crawled = set(small_dataset.weekly_activity)
        # downed instances are missing, but the rest must be covered
        assert crawled <= populated | {
            r.second_domain for r in small_dataset.accounts.values() if r.switched
        }
        assert len(crawled) >= 0.5 * len(populated)

    def test_trends_series_present(self, small_dataset: MigrationDataset):
        assert "Mastodon" in small_dataset.trends
        assert all(len(series) > 30 for series in small_dataset.trends.values())

    def test_serialization_roundtrip_of_real_dataset(
        self, small_dataset: MigrationDataset, tmp_path
    ):
        path = tmp_path / "real.json"
        small_dataset.save(path)
        restored = MigrationDataset.load(path)
        assert restored.migrant_count == small_dataset.migrant_count
        assert len(restored.collected_tweets) == len(small_dataset.collected_tweets)
        assert restored.instance_populations() == small_dataset.instance_populations()
