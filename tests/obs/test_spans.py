"""Tests for repro.obs.spans: nesting, timing, virtual-time accounting."""

import pytest

from repro.obs.metrics import WAIT_COUNTER_NAME, MetricsRegistry


class TestNesting:
    def test_parent_child_structure(self):
        registry = MetricsRegistry()
        with registry.span("root") as root:
            with registry.span("child-a") as a:
                with registry.span("grandchild") as g:
                    pass
            with registry.span("child-b") as b:
                pass
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert a.children == [g]
        assert b.children == []
        assert g.parent is a and a.parent is root and root.parent is None
        assert registry.tracer.roots == [root]

    def test_depth(self):
        registry = MetricsRegistry()
        with registry.span("root") as root:
            with registry.span("child") as child:
                with registry.span("grandchild") as grandchild:
                    pass
        assert (root.depth, child.depth, grandchild.depth) == (0, 1, 2)

    def test_sequential_roots(self):
        registry = MetricsRegistry()
        with registry.span("first"):
            pass
        with registry.span("second"):
            pass
        assert [r.name for r in registry.tracer.roots] == ["first", "second"]

    def test_exception_still_seals_span(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("root"):
                with registry.span("child"):
                    raise RuntimeError("boom")
        assert registry.tracer.current is None
        child = registry.tracer.find("child")
        assert child is not None
        assert child.wall_seconds >= 0.0

    def test_find_and_walk(self):
        registry = MetricsRegistry()
        with registry.span("root"):
            with registry.span("a"):
                pass
            with registry.span("b"):
                pass
        assert registry.tracer.find("b").name == "b"
        assert registry.tracer.find("missing") is None
        assert [s.name for s in registry.tracer.walk()] == ["root", "a", "b"]


class TestAccounting:
    def test_wall_time_is_recorded(self):
        registry = MetricsRegistry()
        with registry.span("work") as span:
            sum(range(1000))
        assert span.wall_seconds > 0.0

    def test_virtual_wait_delta_is_attributed_to_open_spans(self):
        registry = MetricsRegistry()
        with registry.span("outer") as outer:
            with registry.span("inner") as inner:
                registry.counter(WAIT_COUNTER_NAME, endpoint="x").inc(900)
            with registry.span("sibling") as sibling:
                pass
        assert inner.wait_seconds == 900
        assert outer.wait_seconds == 900  # parent includes the child's wait
        assert sibling.wait_seconds == 0

    def test_api_request_delta(self):
        registry = MetricsRegistry()
        with registry.span("crawl") as span:
            registry.counter("twitter.ratelimit.requests", endpoint="s").inc(7)
            registry.counter("mastodon.api.requests", endpoint="a", domain="d").inc(3)
            registry.counter("unrelated.counter").inc(50)
        assert span.api_requests == 10

    def test_annotate(self):
        registry = MetricsRegistry()
        with registry.span("stage") as span:
            span.annotate(items=12, outcome="ok")
        assert span.meta == {"items": 12, "outcome": "ok"}

    def test_to_dict_shape(self):
        registry = MetricsRegistry()
        with registry.span("root") as root:
            root.annotate(k="v")
            with registry.span("child"):
                pass
        doc = root.to_dict()
        assert doc["name"] == "root"
        assert doc["meta"] == {"k": "v"}
        assert doc["children"][0]["name"] == "child"
        assert set(doc) == {
            "name", "wall_seconds", "wait_seconds", "api_requests",
            "start_epoch", "end_epoch", "meta", "children",
        }


class TestTimestamps:
    def test_epoch_and_monotonic_timestamps_are_recorded(self):
        registry = MetricsRegistry()
        with registry.span("outer") as outer:
            with registry.span("inner") as inner:
                sum(range(1000))
        for span in (outer, inner):
            assert span.start_epoch is not None and span.end_epoch is not None
            assert span.end_epoch >= span.start_epoch
            assert span.end_mono >= span.start_mono
        # the child interval nests inside the parent's
        assert outer.start_mono <= inner.start_mono
        assert inner.end_mono <= outer.end_mono

    def test_wall_matches_monotonic_interval(self):
        registry = MetricsRegistry()
        with registry.span("work") as span:
            sum(range(1000))
        assert span.wall_seconds == pytest.approx(
            span.end_mono - span.start_mono, abs=1e-6
        )


class TestErrorAnnotation:
    def test_exception_annotates_error_type(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            with registry.span("root"):
                with registry.span("child"):
                    raise ValueError("boom")
        child = registry.tracer.find("child")
        root = registry.tracer.find("root")
        assert child.error == "ValueError"
        assert child.meta["error"] == "ValueError"
        # the exception propagates, so the parent is marked too
        assert root.error == "ValueError"

    def test_exception_exit_still_records_timestamps(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("failing"):
                raise RuntimeError("boom")
        span = registry.tracer.find("failing")
        assert span.end_epoch is not None
        assert span.end_mono >= span.start_mono
        assert span.wall_seconds >= 0.0

    def test_clean_exit_has_no_error(self):
        registry = MetricsRegistry()
        with registry.span("ok") as span:
            pass
        assert span.error is None
        assert "error" not in span.meta
        assert "error" not in span.to_dict()

    def test_error_appears_in_to_dict_and_tree(self):
        from repro.obs.report import format_span_tree

        registry = MetricsRegistry()
        with pytest.raises(KeyError):
            with registry.span("lookup"):
                raise KeyError("missing")
        span = registry.tracer.find("lookup")
        assert span.to_dict()["error"] == "KeyError"
        assert "!error=KeyError" in format_span_tree(registry)
