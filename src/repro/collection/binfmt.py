"""Compact binary dataset format: ``.npz`` columns + a JSON header.

The JSON format serialises one dict per post — at scale 0.01 that is ~150k
dicts whose keys alone dominate the file.  Here the three big corpora
(collected tweets and both timeline sets) become flat numpy columns:

- integer ids and flags as ``int64``/``bool`` arrays;
- datetimes as exact microseconds-since-epoch ``int64`` (naive datetimes
  only — the simulation never produces tz-aware ones);
- texts as one concatenated UTF-8 blob plus character offsets (decoded
  once on load, sliced per post);
- low-cardinality strings (tweet sources, status applications, account
  handles) interned through per-column vocabularies.

Everything small (matched users, account records, coverage, followee
sample, weekly activity, trends) rides in a JSON header embedded as a
``uint8`` array, reusing the JSON format's field encoders so the two
formats cannot drift.  ``MigrationDataset.save``/``load`` dispatch here
for ``.npz`` paths; round-tripping either format reproduces an equal
dataset (``tests/collection/test_binfmt.py``).
"""

from __future__ import annotations

import datetime as _dt
import json
from pathlib import Path

import numpy as np

from repro.fediverse.models import Status
from repro.twitter.models import Tweet

_EPOCH = _dt.datetime(1970, 1, 1)

#: Bump when the column layout changes.
FORMAT_VERSION = 1


def _to_micros(moment: _dt.datetime) -> int:
    if moment.tzinfo is not None:
        raise ValueError(
            "binary dataset format requires naive datetimes, got "
            f"{moment.isoformat()}"
        )
    delta = moment - _EPOCH
    return (delta.days * 86_400 + delta.seconds) * 1_000_000 + delta.microseconds


def _from_micros(micros: int) -> _dt.datetime:
    return _EPOCH + _dt.timedelta(microseconds=micros)


class _ColumnWriter:
    """Accumulates one corpus' columns under a common array-name prefix."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self.ids: list[int] = []
        self.authors: list[int] = []
        self.micros: list[int] = []
        self.texts: list[str] = []
        self.label_ids: list[int] = []
        self.labels: list[str] = []
        self._label_index: dict[str, int] = {}
        self.flags: list[bool] = []

    def intern(self, label: str) -> int:
        found = self._label_index.get(label)
        if found is None:
            found = len(self.labels)
            self._label_index[label] = found
            self.labels.append(label)
        return found

    def add_tweet(self, tweet: Tweet) -> None:
        self.ids.append(tweet.tweet_id)
        self.authors.append(tweet.author_id)
        self.micros.append(_to_micros(tweet.created_at))
        self.texts.append(tweet.text)
        self.label_ids.append(self.intern(tweet.source))
        self.flags.append(tweet.is_retweet)

    def arrays(self) -> dict[str, np.ndarray]:
        blob = "".join(self.texts)
        offsets = np.zeros(len(self.texts) + 1, dtype=np.int64)
        np.cumsum([len(t) for t in self.texts], out=offsets[1:])
        return {
            f"{self.prefix}_ids": np.asarray(self.ids, dtype=np.int64),
            f"{self.prefix}_authors": np.asarray(self.authors, dtype=np.int64),
            f"{self.prefix}_micros": np.asarray(self.micros, dtype=np.int64),
            f"{self.prefix}_text_blob": np.frombuffer(
                blob.encode("utf-8"), dtype=np.uint8
            ),
            f"{self.prefix}_text_offsets": offsets,
            f"{self.prefix}_label_ids": np.asarray(
                self.label_ids, dtype=np.int32
            ),
            f"{self.prefix}_flags": np.asarray(self.flags, dtype=bool),
        }


class _TweetWriter(_ColumnWriter):
    pass


class _StatusWriter(_ColumnWriter):
    def __init__(self, prefix: str) -> None:
        super().__init__(prefix)
        self.accts: list[str] = []
        self._acct_index: dict[str, int] = {}
        self.reblogs: list[int] = []

    def intern_acct(self, acct: str) -> int:
        found = self._acct_index.get(acct)
        if found is None:
            found = len(self.accts)
            self._acct_index[acct] = found
            self.accts.append(acct)
        return found

    def add_status(self, status: Status) -> None:
        self.ids.append(status.status_id)
        # the authors column holds the interned acct for statuses
        self.authors.append(self.intern_acct(status.account_acct))
        self.micros.append(_to_micros(status.created_at))
        self.texts.append(status.text)
        self.label_ids.append(self.intern(status.application))
        reblog = status.reblog_of_id
        self.flags.append(reblog is not None)
        self.reblogs.append(reblog if reblog is not None else 0)

    def arrays(self) -> dict[str, np.ndarray]:
        out = super().arrays()
        out[f"{self.prefix}_reblogs"] = np.asarray(self.reblogs, dtype=np.int64)
        return out


def _text_column(data: dict, prefix: str) -> list[str]:
    """Decode the UTF-8 blob once and slice texts by character offsets.

    Character offsets (not byte offsets) make the slice step pure string
    indexing — the multi-byte decoding cost is paid exactly once.
    """
    blob = bytes(data[f"{prefix}_text_blob"]).decode("utf-8")
    offsets = data[f"{prefix}_text_offsets"].tolist()
    return [blob[a:b] for a, b in zip(offsets, offsets[1:])]


def save_npz(dataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` in the binary column format."""
    # imported here: dataset.py imports this module for save/load dispatch
    from repro.collection.dataset import (
        _account_doc,
        _coverage_doc,
        _matched_doc,
    )

    collected = _TweetWriter("ct")
    for tweet in dataset.collected_tweets:
        collected.add_tweet(tweet)

    tweets = _TweetWriter("tw")
    tw_uids = list(dataset.twitter_timelines)
    tw_counts = [len(v) for v in dataset.twitter_timelines.values()]
    for timeline in dataset.twitter_timelines.values():
        for tweet in timeline:
            tweets.add_tweet(tweet)

    statuses = _StatusWriter("ma")
    ma_uids = list(dataset.mastodon_timelines)
    ma_counts = [len(v) for v in dataset.mastodon_timelines.values()]
    for timeline in dataset.mastodon_timelines.values():
        for status in timeline:
            statuses.add_status(status)

    header = {
        "format_version": FORMAT_VERSION,
        "version": 1,
        "instance_domains": dataset.instance_domains,
    }
    manifest = dataset.manifest()
    if manifest is not None:
        # clocked snapshots carry the incremental-plane stamp; unclocked
        # ones keep the pre-manifest header bytes
        header["manifest"] = manifest
    header |= {
        "collected_user_count": dataset.collected_user_count,
        "matched": {
            str(uid): _matched_doc(m) for uid, m in dataset.matched.items()
        },
        "accounts": {
            str(uid): _account_doc(a) for uid, a in dataset.accounts.items()
        },
        "twitter_coverage": _coverage_doc(dataset.twitter_coverage),
        "mastodon_coverage": _coverage_doc(dataset.mastodon_coverage),
        "followee_sample": {
            str(uid): {
                "twitter_followees": list(r.twitter_followees),
                "mastodon_following": list(r.mastodon_following),
            }
            for uid, r in dataset.followee_sample.items()
        },
        "weekly_activity": dataset.weekly_activity,
        "trends": dataset.trends,
        "ct_labels": collected.labels,
        "tw_labels": tweets.labels,
        "ma_labels": statuses.labels,
        "ma_accts": statuses.accts,
    }
    arrays = {
        "header": np.frombuffer(
            json.dumps(header, separators=(",", ":")).encode("utf-8"),
            dtype=np.uint8,
        ),
        "tw_uids": np.asarray(tw_uids, dtype=np.int64),
        "tw_counts": np.asarray(tw_counts, dtype=np.int64),
        "ma_uids": np.asarray(ma_uids, dtype=np.int64),
        "ma_counts": np.asarray(ma_counts, dtype=np.int64),
    }
    arrays.update(collected.arrays())
    arrays.update(tweets.arrays())
    arrays.update(statuses.arrays())
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)


def _read_tweets(data: dict, prefix: str, labels: list[str]) -> list[Tweet]:
    ids = data[f"{prefix}_ids"].tolist()
    authors = data[f"{prefix}_authors"].tolist()
    micros = data[f"{prefix}_micros"].tolist()
    texts = _text_column(data, prefix)
    label_ids = data[f"{prefix}_label_ids"].tolist()
    flags = data[f"{prefix}_flags"].tolist()
    return [
        Tweet(
            tweet_id=tid,
            author_id=author,
            created_at=_from_micros(us),
            text=text,
            source=labels[lid],
            is_retweet=flag,
        )
        for tid, author, us, text, lid, flag in zip(
            ids, authors, micros, texts, label_ids, flags
        )
    ]


def _read_statuses(
    data: dict, prefix: str, labels: list[str], accts: list[str]
) -> list[Status]:
    ids = data[f"{prefix}_ids"].tolist()
    acct_ids = data[f"{prefix}_authors"].tolist()
    micros = data[f"{prefix}_micros"].tolist()
    texts = _text_column(data, prefix)
    label_ids = data[f"{prefix}_label_ids"].tolist()
    boosts = data[f"{prefix}_flags"].tolist()
    reblogs = data[f"{prefix}_reblogs"].tolist()
    return [
        Status(
            status_id=sid,
            account_acct=accts[aid],
            created_at=_from_micros(us),
            text=text,
            application=labels[lid],
            reblog_of_id=reblog if boost else None,
        )
        for sid, aid, us, text, lid, boost, reblog in zip(
            ids, acct_ids, micros, texts, label_ids, boosts, reblogs
        )
    ]


def _regroup(uids: list[int], counts: list[int], items: list) -> dict[int, list]:
    timelines: dict[int, list] = {}
    cursor = 0
    for uid, count in zip(uids, counts):
        timelines[uid] = items[cursor : cursor + count]
        cursor += count
    return timelines


#: Dataset fields whose columns dominate the archive; lazy loads defer them.
LAZY_FIELDS = ("collected_tweets", "twitter_timelines", "mastodon_timelines")


def _lazy_field(name: str):
    """A data-descriptor field that materialises from the archive on first read.

    The value lives under a private slot in the instance dict; explicit
    assignment (including the dataclass-generated ``__init__`` defaults)
    removes the field from the pending set, so a field is only ever
    materialised while it still holds nothing but its placeholder default.
    """
    store = "_lazy_value_" + name

    def getter(self):
        pending = getattr(self, "_lazy_pending", None)
        if pending and name in pending:
            self._materialize(name)
        return getattr(self, store)

    def setter(self, value) -> None:
        pending = getattr(self, "_lazy_pending", None)
        if pending is not None:
            pending.discard(name)
        setattr(self, store, value)

    return property(getter, setter)


def _load_prefixed(path: Path, prefixes: tuple[str, ...]) -> dict:
    """Read only the arrays under the given name prefixes from the archive."""
    with np.load(path) as archive:
        return {
            name: archive[name]
            for name in archive.files
            if name.startswith(prefixes)
        }


def _make_lazy_class():
    from repro.collection.dataset import MigrationDataset

    class LazyNpzDataset(MigrationDataset):
        """A dataset whose three big corpora load from disk on first access.

        Everything header-sized (matched users, accounts, coverage,
        weekly activity, trends) is eager; ``collected_tweets`` and both
        timeline dicts materialise from the ``.npz`` archive the first
        time anything reads them.  This is the serving cold-start path: a
        server answers ``/healthz``, ``/v1/instances`` and ``/v1/trends``
        before a single timeline column has been read.

        Materialised (or assigned) fields are indistinguishable from an
        eager load; note the dataclass ``__eq__`` checks exact class
        identity, so compare lazy and eager datasets via ``to_json()``.
        """

        collected_tweets = _lazy_field("collected_tweets")
        twitter_timelines = _lazy_field("twitter_timelines")
        mastodon_timelines = _lazy_field("mastodon_timelines")

        def _attach(self, path: Path, header: dict) -> None:
            self._lazy_path = path
            self._lazy_header = header
            self._lazy_pending = set(LAZY_FIELDS)

        @property
        def lazy_pending(self) -> tuple[str, ...]:
            """Still-unmaterialised fields (introspection for tests/metrics)."""
            return tuple(sorted(getattr(self, "_lazy_pending", ())))

        def _materialize(self, name: str) -> None:
            header = self._lazy_header
            if name == "collected_tweets":
                data = _load_prefixed(self._lazy_path, ("ct_",))
                value = _read_tweets(data, "ct", header["ct_labels"])
            elif name == "twitter_timelines":
                data = _load_prefixed(self._lazy_path, ("tw_",))
                value = _regroup(
                    data["tw_uids"].tolist(),
                    data["tw_counts"].tolist(),
                    _read_tweets(data, "tw", header["tw_labels"]),
                )
            else:
                data = _load_prefixed(self._lazy_path, ("ma_",))
                value = _regroup(
                    data["ma_uids"].tolist(),
                    data["ma_counts"].tolist(),
                    _read_statuses(data, "ma", header["ma_labels"], header["ma_accts"]),
                )
            setattr(self, name, value)  # the setter clears the pending mark

    return LazyNpzDataset


_LazyNpzDataset = None


def lazy_dataset_class():
    """The (memoized) lazy dataset class; built on first use to avoid an
    import cycle with :mod:`repro.collection.dataset`."""
    global _LazyNpzDataset
    if _LazyNpzDataset is None:
        _LazyNpzDataset = _make_lazy_class()
    return _LazyNpzDataset


def _read_header(path: Path) -> dict:
    with np.load(path) as archive:
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
    if header.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported binary dataset format {header.get('format_version')!r}"
        )
    return header


def _fill_header_fields(dataset, header: dict) -> None:
    from repro.collection.dataset import (
        CrawlCoverage,
        FolloweeRecord,
        _account_from,
        _matched_from,
    )

    dataset.instance_domains = list(header["instance_domains"])
    manifest = header.get("manifest")
    if manifest is not None:
        dataset.dataset_version = int(manifest["dataset_version"])
        if manifest.get("clock"):
            dataset.clock = _dt.date.fromisoformat(manifest["clock"])
    dataset.collected_user_count = int(header["collected_user_count"])
    dataset.matched = {
        int(uid): _matched_from(d) for uid, d in header["matched"].items()
    }
    dataset.accounts = {
        int(uid): _account_from(d) for uid, d in header["accounts"].items()
    }
    dataset.twitter_coverage = CrawlCoverage(**header["twitter_coverage"])
    dataset.mastodon_coverage = CrawlCoverage(**header["mastodon_coverage"])
    dataset.followee_sample = {
        int(uid): FolloweeRecord(
            twitter_user_id=int(uid),
            twitter_followees=tuple(d["twitter_followees"]),
            mastodon_following=tuple(d["mastodon_following"]),
        )
        for uid, d in header["followee_sample"].items()
    }
    dataset.weekly_activity = {
        domain: list(rows) for domain, rows in header["weekly_activity"].items()
    }
    dataset.trends = {
        term: [(day, int(v)) for day, v in series]
        for term, series in header["trends"].items()
    }


def load_npz(path: str | Path, lazy: bool = False):
    """Read a dataset written by :func:`save_npz`.

    With ``lazy=True`` only the JSON header is read now; the three big
    corpora (``collected_tweets`` and both timeline dicts) materialise
    from the archive on first access.  The loaded contents are identical
    either way — laziness only moves *when* the columns are decoded.
    """
    from repro.collection.dataset import MigrationDataset

    path = Path(path)
    if lazy:
        header = _read_header(path)
        dataset = lazy_dataset_class()()
        dataset._attach(path, header)
        _fill_header_fields(dataset, header)
        return dataset

    with np.load(path) as archive:
        data = {name: archive[name] for name in archive.files}
    header = json.loads(bytes(data["header"]).decode("utf-8"))
    if header.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported binary dataset format {header.get('format_version')!r}"
        )

    dataset = MigrationDataset()
    _fill_header_fields(dataset, header)
    dataset.collected_tweets = _read_tweets(data, "ct", header["ct_labels"])
    dataset.twitter_timelines = _regroup(
        data["tw_uids"].tolist(),
        data["tw_counts"].tolist(),
        _read_tweets(data, "tw", header["tw_labels"]),
    )
    dataset.mastodon_timelines = _regroup(
        data["ma_uids"].tolist(),
        data["ma_counts"].tolist(),
        _read_statuses(data, "ma", header["ma_labels"], header["ma_accts"]),
    )
    return dataset
