"""RQ2: instance switching (Section 5.3, Figures 9-10).

The paper finds 4.09% of users switched instance (97.22% of switches after
the takeover), predominantly from flagship general-purpose instances toward
topical ones, and that switches are socially driven: on average 46.98% of a
switcher's migrated followees are on the *second* instance (vs 11.4% on the
first), and 77.42% of those joined the second instance before the user did.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

import numpy as np

from repro.collection.dataset import MigrationDataset
from repro.errors import AnalysisError
from repro.frames import AUTO, resolve_frames
from repro.util.clock import TAKEOVER_DATE
from repro.util.stats import Ecdf, percent


@dataclass(frozen=True)
class SwitchMatrixResult:
    """Figure 9: the chord diagram's underlying matrix."""

    #: (first domain, second domain) -> switch count
    matrix: dict[tuple[str, str], int]
    switcher_count: int
    pct_switched: float  # of all matched users with accounts; paper 4.09%
    pct_post_takeover: float  # of switches; paper 97.22%
    top_sources: list[tuple[str, int]]
    top_targets: list[tuple[str, int]]


def switch_matrix(
    dataset: MigrationDataset, takeover: _dt.date = TAKEOVER_DATE, frames=AUTO
) -> SwitchMatrixResult:
    """The Figure 9 matrix of first->second instance moves."""
    if not dataset.accounts:
        raise AnalysisError("no account records in dataset")
    fr = resolve_frames(dataset, frames)
    matrix: dict[tuple[str, str], int] = {}
    post = 0
    switchers = dataset.switchers()
    if fr is not None:
        table = fr.profile_table
        takeover_ord = takeover.toordinal()
        for uid in switchers:
            row = table.acct_row[uid]
            second_id = int(table.acct_second_domain_ids[row])
            assert second_id >= 0
            key = (
                table.domains[table.acct_first_domain_ids[row]],
                table.domains[second_id],
            )
            matrix[key] = matrix.get(key, 0) + 1
            second_ord = int(table.acct_second_ordinals[row])
            if second_ord != -1 and second_ord >= takeover_ord:
                post += 1
    else:
        for uid in switchers:
            record = dataset.accounts[uid]
            second = record.second_domain
            assert second is not None
            key = (record.first_domain, second)
            matrix[key] = matrix.get(key, 0) + 1
            if record.second_created_at is not None and record.second_created_at.date() >= takeover:
                post += 1
    sources: dict[str, int] = {}
    targets: dict[str, int] = {}
    for (src, dst), count in matrix.items():
        sources[src] = sources.get(src, 0) + count
        targets[dst] = targets.get(dst, 0) + count
    return SwitchMatrixResult(
        matrix=matrix,
        switcher_count=len(switchers),
        pct_switched=percent(len(switchers), len(dataset.accounts)),
        pct_post_takeover=percent(post, max(1, len(switchers))),
        top_sources=sorted(sources.items(), key=lambda kv: -kv[1])[:10],
        top_targets=sorted(targets.items(), key=lambda kv: -kv[1])[:10],
    )


@dataclass(frozen=True)
class SwitcherInfluenceResult:
    """Figure 10: the social pull behind switches."""

    frac_on_first: Ecdf  # fraction of migrated followees on first instance
    frac_on_second: Ecdf
    frac_second_before: Ecdf  # of those on second: joined before the user
    mean_pct_on_first: float  # paper: 11.4%
    mean_pct_on_second: float  # paper: 46.98%
    mean_pct_second_before: float  # paper: 77.42%
    switcher_sample: int


def _followee_instance_and_date(
    dataset: MigrationDataset, followee_id: int, domain: str
) -> _dt.date | None:
    """When (if ever) ``followee_id`` joined ``domain``.

    The followee may be on that instance as their first choice or through a
    switch of their own; returns None when they were never there.
    """
    record = dataset.accounts.get(followee_id)
    if record is None:
        return None
    if record.first_domain == domain:
        return record.first_created_at.date()
    if record.second_domain == domain and record.second_created_at is not None:
        return record.second_created_at.date()
    return None


def _join_ordinal(table, followee_id: int, domain_id: int) -> int | None:
    """Integer-id twin of :func:`_followee_instance_and_date` (ordinals)."""
    row = table.acct_row.get(followee_id)
    if row is None:
        return None
    if table.acct_first_domain_ids[row] == domain_id:
        return int(table.acct_first_ordinals[row])
    second_ord = int(table.acct_second_ordinals[row])
    if table.acct_second_domain_ids[row] == domain_id and second_ord != -1:
        return second_ord
    return None


def switcher_influence(
    dataset: MigrationDataset, frames=AUTO
) -> SwitcherInfluenceResult:
    """The Figure 10 analysis over sampled switchers."""
    fr = resolve_frames(dataset, frames)
    if fr is not None:
        return fr.result(
            ("switcher_influence",), lambda: _switcher_influence_frames(fr)
        )
    frac_first, frac_second, frac_before = [], [], []
    for uid in dataset.switchers():
        record = dataset.accounts[uid]
        sample = dataset.followee_sample.get(uid)
        if sample is None or not sample.twitter_followees:
            continue
        second = record.second_domain
        assert second is not None
        switch_date = (
            record.second_created_at.date() if record.second_created_at else None
        )
        migrated = [f for f in sample.twitter_followees if f in dataset.matched]
        if not migrated:
            continue
        on_first, on_second, before = 0, 0, 0
        for followee in migrated:
            if _followee_instance_and_date(dataset, followee, record.first_domain):
                on_first += 1
            joined_second = _followee_instance_and_date(dataset, followee, second)
            if joined_second is not None:
                on_second += 1
                if switch_date is not None and joined_second < switch_date:
                    before += 1
        frac_first.append(on_first / len(migrated))
        frac_second.append(on_second / len(migrated))
        if on_second:
            frac_before.append(before / on_second)
    if not frac_first:
        raise AnalysisError("no switchers with followee data")
    return _build_influence(frac_first, frac_second, frac_before)


def _switcher_influence_frames(fr) -> SwitcherInfluenceResult:
    dataset = fr.dataset
    table = fr.profile_table
    frac_first, frac_second, frac_before = [], [], []
    for uid in dataset.switchers():
        sample = dataset.followee_sample.get(uid)
        if sample is None or not sample.twitter_followees:
            continue
        row = table.acct_row[uid]
        first_id = int(table.acct_first_domain_ids[row])
        second_id = int(table.acct_second_domain_ids[row])
        assert second_id >= 0
        switch_ord = int(table.acct_second_ordinals[row])
        migrated = [
            f for f in sample.twitter_followees if f in table.matched_row
        ]
        if not migrated:
            continue
        on_first, on_second, before = 0, 0, 0
        for followee in migrated:
            if _join_ordinal(table, followee, first_id) is not None:
                on_first += 1
            joined_second = _join_ordinal(table, followee, second_id)
            if joined_second is not None:
                on_second += 1
                if switch_ord != -1 and joined_second < switch_ord:
                    before += 1
        frac_first.append(on_first / len(migrated))
        frac_second.append(on_second / len(migrated))
        if on_second:
            frac_before.append(before / on_second)
    if not frac_first:
        raise AnalysisError("no switchers with followee data")
    return _build_influence(frac_first, frac_second, frac_before)


def _build_influence(
    frac_first: list[float], frac_second: list[float], frac_before: list[float]
) -> SwitcherInfluenceResult:
    return SwitcherInfluenceResult(
        frac_on_first=Ecdf.from_sample(frac_first),
        frac_on_second=Ecdf.from_sample(frac_second),
        frac_second_before=Ecdf.from_sample(frac_before or [0.0]),
        mean_pct_on_first=100.0 * float(np.mean(frac_first)),
        mean_pct_on_second=100.0 * float(np.mean(frac_second)),
        mean_pct_second_before=(
            100.0 * float(np.mean(frac_before)) if frac_before else 0.0
        ),
        switcher_sample=len(frac_first),
    )
