"""Tests for repro.analysis.activity."""

import datetime as dt

import pytest

from repro.analysis.activity import collected_tweet_volume, daily_volume
from repro.collection.dataset import MigrationDataset
from repro.errors import AnalysisError
from repro.util.clock import TAKEOVER_DATE
from tests.conftest import make_status, make_tweet

OCT28 = dt.date(2022, 10, 28)
OCT29 = dt.date(2022, 10, 29)


@pytest.fixture
def dataset(tiny_dataset):
    tiny_dataset.twitter_timelines = {
        1: [make_tweet(1, 1, OCT28, "a"), make_tweet(2, 1, OCT29, "b")],
        2: [make_tweet(3, 2, OCT28, "c")],
    }
    tiny_dataset.mastodon_timelines = {
        1: [make_status(4, "alice@mastodon.social", OCT29, "d")],
    }
    tiny_dataset.collected_tweets = [
        make_tweet(5, 1, dt.date(2022, 10, 26), "mastodon"),
        make_tweet(6, 2, OCT28, "bye bye twitter"),
        make_tweet(7, 3, OCT28, "#TwitterMigration"),
    ]
    return tiny_dataset


class TestDailyVolume:
    def test_counts_per_day(self, dataset):
        result = daily_volume(dataset)
        assert dict(result.tweets_per_day) == {OCT28: 2, OCT29: 1}
        assert dict(result.statuses_per_day) == {OCT29: 1}

    def test_totals(self, dataset):
        result = daily_volume(dataset)
        assert result.total_tweets == 3
        assert result.total_statuses == 1

    def test_accessors(self, dataset):
        result = daily_volume(dataset)
        assert result.tweets_on(OCT28) == 2
        assert result.tweets_on(dt.date(2022, 7, 1)) == 0
        assert result.statuses_on(OCT29) == 1

    def test_accessor_index_is_cached(self, dataset):
        # the day lookups are dict-backed, built once per result object
        result = daily_volume(dataset)
        result.tweets_on(OCT28)
        assert result._tweet_index is result._tweet_index
        assert result._tweet_index == dict(result.tweets_per_day)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            daily_volume(MigrationDataset())


class TestCollectedVolume:
    def test_peak_day(self, dataset):
        result = collected_tweet_volume(dataset)
        assert result.peak_day == OCT28
        assert result.total == 3

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            collected_tweet_volume(MigrationDataset())


class TestOnSimulatedData:
    def test_mastodon_grows_after_takeover(self, small_dataset):
        result = daily_volume(small_dataset)
        statuses = dict(result.statuses_per_day)
        before = sum(v for d, v in statuses.items() if d < TAKEOVER_DATE)
        after = sum(v for d, v in statuses.items() if d >= TAKEOVER_DATE)
        assert after > 5 * max(1, before)

    def test_twitter_does_not_collapse(self, small_dataset):
        """Fig. 11: migrated users keep tweeting after the takeover."""
        result = daily_volume(small_dataset)
        tweets = dict(result.tweets_per_day)
        pre_days = [v for d, v in tweets.items() if d < TAKEOVER_DATE]
        post_days = [v for d, v in tweets.items() if d >= TAKEOVER_DATE]
        pre_mean = sum(pre_days) / len(pre_days)
        post_mean = sum(post_days) / len(post_days)
        assert post_mean > 0.6 * pre_mean

    def test_collected_volume_peaks_at_takeover(self, small_dataset):
        result = collected_tweet_volume(small_dataset)
        assert abs((result.peak_day - TAKEOVER_DATE).days) <= 3
