"""Tests for repro.simulation.config."""

import datetime as dt

import pytest

from repro.errors import ConfigError
from repro.simulation.config import PAPER_MIGRANTS, WorldConfig


class TestDefaults:
    def test_defaults_validate(self):
        WorldConfig().validate()

    def test_target_migrants_scales(self):
        assert WorldConfig(scale=1.0).target_migrants == PAPER_MIGRANTS
        assert WorldConfig(scale=0.01).target_migrants == round(PAPER_MIGRANTS * 0.01)

    def test_target_migrants_floor(self):
        assert WorldConfig(scale=1e-9).target_migrants == 40

    def test_population_hierarchy(self):
        config = WorldConfig(scale=0.01)
        assert config.n_population > config.n_at_risk > 0
        assert config.n_hubs >= 10
        assert config.n_chatter > 0

    def test_directory_scaling_sublinear(self):
        small = WorldConfig(scale=0.01).n_directory_instances
        large = WorldConfig(scale=0.04).n_directory_instances
        assert small < large < 4 * small

    def test_directory_minimum(self):
        assert WorldConfig(scale=0.0001).n_directory_instances >= 60

    def test_choice_weights_form_distribution(self):
        config = WorldConfig()
        total = (
            config.choice_social_weight
            + config.choice_flagship_weight
            + config.choice_topic_weight
            + config.choice_random_weight
        )
        assert total == pytest.approx(1.0)
        assert config.choice_random_weight >= 0


class TestValidation:
    def test_scale_positive(self):
        with pytest.raises(ConfigError):
            WorldConfig(scale=0).validate()

    def test_window_order(self):
        with pytest.raises(ConfigError):
            WorldConfig(
                start=dt.date(2022, 11, 30), end=dt.date(2022, 10, 1)
            ).validate()

    def test_choice_weights_capped(self):
        with pytest.raises(ConfigError):
            WorldConfig(choice_social_weight=0.9, choice_flagship_weight=0.9).validate()

    def test_fraction_bounds(self):
        with pytest.raises(ConfigError):
            WorldConfig(lurker_fraction=1.5).validate()
        with pytest.raises(ConfigError):
            WorldConfig(verified_fraction=-0.1).validate()

    def test_degree_bounds(self):
        with pytest.raises(ConfigError):
            WorldConfig(twitter_median_followees=0).validate()

    def test_rates_non_negative(self):
        with pytest.raises(ConfigError):
            WorldConfig(tweet_rate_mean=-1).validate()

    def test_frozen(self):
        config = WorldConfig()
        with pytest.raises(AttributeError):
            config.scale = 0.5  # type: ignore[misc]
