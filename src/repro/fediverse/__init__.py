"""A multi-instance Mastodon network.

The substrate implements the Mastodon semantics described in Section 2 of
the paper:

- independent **instances** where users register local accounts and post
  statuses / boosts;
- **federation**: a local account can follow a remote account, implemented as
  an ActivityPub-style ``Follow``/``Accept`` exchange after which the remote
  instance pushes ``Create``/``Announce`` activities to the subscriber;
- three **timelines** per user: home, local and federated (the federated
  timeline is the union of remote statuses retrieved by *all* local users);
- account **migration** between instances (the ``Move`` activity), which the
  paper analyses as "instance switching" (Section 5.3);
- per-instance client APIs (account statuses, following, weekly activity)
  with downtime injection, plus an ``instances.social``-style directory.
"""

from repro.fediverse.activitypub import (
    Accept,
    Activity,
    Announce,
    Create,
    Follow,
    Move,
    parse_acct,
)
from repro.fediverse.api import MastodonClient
from repro.fediverse.directory import InstanceDirectory
from repro.fediverse.errors import (
    AccountNotFoundError,
    FediverseError,
    InstanceDownError,
    InstanceNotFoundError,
)
from repro.fediverse.instance import MastodonInstance
from repro.fediverse.models import Account, InstanceInfo, Status
from repro.fediverse.network import FediverseNetwork
from repro.fediverse.pleroma import PleromaInstance
from repro.fediverse.policy import ContentPolicy

__all__ = [
    "Activity",
    "Follow",
    "Accept",
    "Create",
    "Announce",
    "Move",
    "parse_acct",
    "MastodonClient",
    "InstanceDirectory",
    "FediverseError",
    "InstanceDownError",
    "InstanceNotFoundError",
    "AccountNotFoundError",
    "MastodonInstance",
    "Account",
    "Status",
    "InstanceInfo",
    "FediverseNetwork",
    "ContentPolicy",
    "PleromaInstance",
]
