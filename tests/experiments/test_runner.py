"""Tests for the CLI runner (repro-experiments)."""

import pytest

from repro.experiments.runner import main


@pytest.fixture(scope="module")
def saved_dataset(small_dataset_path):
    return small_dataset_path


@pytest.fixture(scope="module")
def small_dataset_path(tmp_path_factory):
    # reuse the session dataset through a fresh save to avoid a second build
    from repro.collection.pipeline import collect_dataset
    from repro.simulation.world import build_world

    dataset = collect_dataset(build_world(seed=11, scale=0.002))
    path = tmp_path_factory.mktemp("runner") / "dataset.json"
    dataset.save(path)
    return str(path)


class TestRunner:
    def test_runs_selected_experiments_from_saved_dataset(
        self, saved_dataset, capsys
    ):
        code = main(["--dataset", saved_dataset, "--only", "F5,F9"])
        assert code == 0
        out = capsys.readouterr().out
        assert "F5:" in out and "F9:" in out
        assert "F14:" not in out

    def test_report_flag(self, saved_dataset, capsys):
        code = main(["--dataset", saved_dataset, "--only", "F5", "--report"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper" in out and "measured" in out

    def test_extension_selection(self, saved_dataset, capsys):
        code = main(["--dataset", saved_dataset, "--only", "X1"])
        assert code == 0
        assert "Retention" in capsys.readouterr().out

    def test_save_roundtrip(self, saved_dataset, tmp_path, capsys):
        out_path = tmp_path / "resaved.json"
        code = main(
            ["--dataset", saved_dataset, "--only", "F5", "--save", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()

    def test_unknown_experiment(self, saved_dataset):
        with pytest.raises(KeyError):
            main(["--dataset", saved_dataset, "--only", "F99"])
