"""Shared primitives: simulated time, seeded randomness, ids, statistics."""

from repro.util.clock import (
    SIM_END,
    SIM_START,
    TAKEOVER_DATE,
    SimClock,
    date_range,
    day_index,
    from_day_index,
    iso_week,
    parse_date,
)
from repro.util.ids import SnowflakeGenerator
from repro.util.rng import RngTree
from repro.util.stats import (
    Ecdf,
    gini,
    lorenz_curve,
    percent,
    quantile_bucket_edges,
    summarize,
)

__all__ = [
    "SIM_START",
    "SIM_END",
    "TAKEOVER_DATE",
    "SimClock",
    "date_range",
    "day_index",
    "from_day_index",
    "iso_week",
    "parse_date",
    "SnowflakeGenerator",
    "RngTree",
    "Ecdf",
    "gini",
    "lorenz_curve",
    "percent",
    "quantile_bucket_edges",
    "summarize",
]
