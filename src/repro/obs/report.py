"""Export: the human-readable crawl report and the machine-readable JSON.

The crawl report is the pipeline's "data inventory" — the honest,
per-stage accounting a measurement paper owes its readers: how long each
stage took, how many simulated API requests it issued, how much virtual
rate-limiter time it burned, and what every crawler's coverage looked like.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import REQUEST_COUNTER_NAMES, WAIT_COUNTER_NAME, MetricsRegistry
from repro.obs.spans import Span


def _span_suffix(span: Span) -> str:
    """Failure and memory markers appended to a span's report line."""
    parts = []
    if span.error is not None:
        parts.append(f"!error={span.error}")
    if span.peak_rss_bytes is not None:
        parts.append(f"rss {span.peak_rss_bytes / 1_048_576:.0f}MB")
    if span.tracemalloc_peak_bytes is not None:
        parts.append(f"alloc {span.tracemalloc_peak_bytes / 1_048_576:.1f}MB")
    return ("  [" + ", ".join(parts) + "]") if parts else ""


def format_span_tree(registry: MetricsRegistry) -> str:
    """The span hierarchy, one line per span, indented by depth."""
    lines = ["# span tree (wall s / api requests / simulated wait s)"]
    for span in registry.tracer.walk():
        indent = "  " * span.depth
        lines.append(
            f"{indent}{span.name}: {span.wall_seconds:.3f}s wall, "
            f"{span.api_requests} req, {span.wait_seconds:.0f}s wait"
            f"{_span_suffix(span)}"
        )
    if len(lines) == 1:
        lines.append("(no spans recorded)")
    return "\n".join(lines)


def _stage_rows(registry: MetricsRegistry) -> list[tuple[str, Span]]:
    return [("  " * span.depth + span.name, span) for span in registry.tracer.walk()]


def format_crawl_report(registry: MetricsRegistry) -> str:
    """The full data-inventory report: stages, endpoints, coverage, sizes."""
    sections = ["# crawl report"]

    rows = _stage_rows(registry)
    if rows:
        name_width = max(len(name) for name, _ in rows)
        sections.append("\n## stage inventory")
        header = f"{'stage':<{name_width}}  {'wall s':>8}  {'requests':>9}  {'wait s':>10}"
        sections.append(header)
        sections.append("-" * len(header))
        for name, span in rows:
            sections.append(
                f"{name:<{name_width}}  {span.wall_seconds:>8.3f}  "
                f"{span.api_requests:>9}  {span.wait_seconds:>10.0f}"
                f"{_span_suffix(span)}"
            )

    endpoint_lines = []
    for counter_name in REQUEST_COUNTER_NAMES:
        per_endpoint = registry.counters_by_label(counter_name, "endpoint")
        for endpoint in sorted(per_endpoint):
            endpoint_lines.append(
                f"{counter_name}{{endpoint={endpoint}}}: {per_endpoint[endpoint]:.0f}"
            )
    waited = registry.counter_total(WAIT_COUNTER_NAME)
    if endpoint_lines:
        sections.append("\n## api requests per endpoint")
        sections.extend(endpoint_lines)
        sections.append(f"simulated rate-limit wait: {waited:.0f}s")

    coverage_lines = [
        f"{counter.name}{_format_labels(counter.labels)}: {counter.value:.0f}"
        for counter in sorted(
            registry.counters(), key=lambda c: (c.name, sorted(c.labels.items()))
        )
        if counter.name.startswith("collection.")
    ]
    gauge_lines = [
        f"{gauge.name}{_format_labels(gauge.labels)}: {gauge.value:.2f}"
        for gauge in sorted(
            registry.gauges(), key=lambda g: (g.name, sorted(g.labels.items()))
        )
    ]
    if coverage_lines or gauge_lines:
        sections.append("\n## crawl accounting")
        sections.extend(coverage_lines)
        sections.extend(gauge_lines)

    histogram_lines = []
    for histogram in sorted(registry.histograms(), key=lambda h: h.name):
        s = histogram.summary()
        histogram_lines.append(
            f"{histogram.name}: n={s['count']} mean={s['mean']:.1f} "
            f"p50={s['p50']:.0f} p90={s['p90']:.0f} p99={s['p99']:.0f} "
            f"max={s['max']:.0f}"
        )
    if histogram_lines:
        sections.append("\n## size distributions")
        sections.extend(histogram_lines)

    if len(sections) == 1:
        sections.append("(registry is empty)")
    return "\n".join(sections)


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{{{inner}}}"


def write_metrics_json(registry: MetricsRegistry, path: str | Path) -> None:
    """Write the registry's machine-readable export to ``path``."""
    Path(path).write_text(json.dumps(registry.to_dict(), indent=2) + "\n")


def span_names(registry: MetricsRegistry) -> set[str]:
    """Every span name in the trace (validation helper for CI smoke runs)."""
    return {span.name for span in registry.tracer.walk()}
