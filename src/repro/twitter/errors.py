"""Errors raised by the simulated Twitter APIs.

The hierarchy mirrors the HTTP failure modes the paper's crawler had to
handle when gathering timelines (Section 3.2): suspended accounts, deleted or
deactivated accounts, protected tweets, and rate limiting.

The classes are defined in :mod:`repro.errors` (the package's unified error
surface) and re-exported here for compatibility.
"""

from repro.errors import (
    NotFoundError,
    ProtectedAccountError,
    RateLimitExceeded,
    SuspendedAccountError,
    TwitterError,
)

__all__ = [
    "TwitterError",
    "NotFoundError",
    "SuspendedAccountError",
    "ProtectedAccountError",
    "RateLimitExceeded",
]
