"""Migration-tweet collection (Section 3.1).

Two full-archive searches over the collection window (Oct 26 - Nov 21 2022):

1. tweets containing a link to any known Mastodon instance, issued in
   domain batches (the real API bounds query length, so ~20 domains per
   query);
2. tweets containing the migration keywords and hashtags.

Results are merged and deduplicated; the authors' user objects are kept for
the matcher.  The paper gathered 2,090,940 tweets from 1,024,577 users here.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

from repro import obs
from repro.errors import RateLimitExceeded, TransientError
from repro.twitter.api import TwitterAPI
from repro.twitter.models import Tweet, TwitterUser
from repro.twitter.search import SearchQuery, instance_link_query, migration_query
from repro.util.clock import TWEET_COLLECTION_END, TWEET_COLLECTION_START

#: Domains per instance-link query (the real query-length limit's effect).
DOMAIN_BATCH = 20


@dataclass
class CollectedTweets:
    """The §3.1 corpus: tweets plus their authors' user objects."""

    tweets: list[Tweet] = field(default_factory=list)
    users: dict[int, TwitterUser] = field(default_factory=dict)

    @property
    def tweet_count(self) -> int:
        return len(self.tweets)

    @property
    def user_count(self) -> int:
        return len(self.users)

    def tweets_by_author(self) -> dict[int, list[Tweet]]:
        by_author: dict[int, list[Tweet]] = {}
        for tweet in self.tweets:
            by_author.setdefault(tweet.author_id, []).append(tweet)
        return by_author


class TweetCollector:
    """Runs the two searches and merges the results."""

    def __init__(
        self,
        api: TwitterAPI,
        since: _dt.date = TWEET_COLLECTION_START,
        until: _dt.date = TWEET_COLLECTION_END,
    ) -> None:
        self._api = api
        self._since = since
        self._until = until

    def collect(self, instance_domains: list[str]) -> CollectedTweets:
        """Collect all migration-related tweets in the window."""
        registry = obs.current()
        collected = CollectedTweets()
        seen: set[int] = set()
        queries = self._queries(instance_domains)
        registry.counter("collection.tweet_search.queries").inc(len(queries))
        for query in queries:
            self.drain_query(query, collected, seen)
        return merge_collected([collected])

    def build_queries(self, instance_domains: list[str]) -> list[SearchQuery]:
        """The full query list: one keyword query plus domain-batch queries.

        Public so the sharded engine can partition the same query list the
        serial collector would have walked.
        """
        queries = [migration_query(self._since, self._until)]
        for start in range(0, len(instance_domains), DOMAIN_BATCH):
            batch = tuple(instance_domains[start : start + DOMAIN_BATCH])
            queries.append(instance_link_query(batch, self._since, self._until))
        return queries

    # Backwards-compatible private alias (tests exercise the old name).
    _queries = build_queries

    def drain_query(
        self, query: SearchQuery, collected: CollectedTweets, seen: set[int]
    ) -> None:
        """Walk every page of one query, degrading on exhausted transients.

        A transient failure that survived the transport's retry budget
        aborts the *rest of this query* (its already-collected pages stay),
        is counted, and the collector moves on to the next query — a real
        crawl loses a search window, not the run.
        """
        try:
            for page in self._api.iter_search_pages(query):
                for tweet in page.tweets:
                    if tweet.tweet_id not in seen:
                        seen.add(tweet.tweet_id)
                        collected.tweets.append(tweet)
                    else:
                        obs.current().counter(
                            "collection.tweet_search.duplicates"
                        ).inc()
                collected.users.update(page.users)
        except (TransientError, RateLimitExceeded):
            obs.current().counter("collection.tweet_search.aborted_queries").inc()


def merge_collected(parts: list[CollectedTweets]) -> CollectedTweets:
    """Merge per-shard corpora into the final §3.1 corpus.

    Deduplicates across parts (a tweet matched by queries in two different
    shards counts as a duplicate, exactly as the serial single-``seen``-set
    walk would have counted it), sorts by tweet id, and records the final
    corpus counters.  With a single part this is exactly the serial
    finalisation, so the serial and sharded paths share one code path.
    """
    registry = obs.current()
    merged = CollectedTweets()
    seen: set[int] = set()
    for part in parts:
        for tweet in part.tweets:
            if tweet.tweet_id not in seen:
                seen.add(tweet.tweet_id)
                merged.tweets.append(tweet)
            else:
                registry.counter("collection.tweet_search.duplicates").inc()
        merged.users.update(part.users)
    merged.tweets.sort(key=lambda t: t.tweet_id)
    registry.counter("collection.tweet_search.tweets").inc(merged.tweet_count)
    registry.counter("collection.tweet_search.users").inc(merged.user_count)
    return merged
