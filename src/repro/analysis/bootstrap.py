"""Bootstrap confidence intervals for the per-user statistics.

The paper reports point estimates ("5.99% of each user's followees also
migrate"); on a simulated substrate the honest comparison needs uncertainty.
This module provides percentile-bootstrap CIs for any per-user sample, plus
a convenience wrapper that attaches CIs to the headline per-user means.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.analysis.social_influence import followee_migration
from repro.analysis.content import content_similarity
from repro.analysis.toxicity import toxicity_analysis
from repro.collection.dataset import MigrationDataset
from repro.errors import AnalysisError


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with a percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    n: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.estimate:.2f} "
            f"[{self.low:.2f}, {self.high:.2f}] @ {self.confidence:.0%}"
        )


def bootstrap_ci(
    sample: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI for ``statistic`` over ``sample``."""
    values = np.asarray(list(sample), dtype=float)
    if values.size == 0:
        raise AnalysisError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 10:
        raise AnalysisError("need at least 10 resamples")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, values.size, size=(n_resamples, values.size))
    stats = np.apply_along_axis(statistic, 1, values[indices])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=float(statistic(values)),
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
        n=int(values.size),
    )


def headline_intervals(
    dataset: MigrationDataset,
    n_resamples: int = 1000,
    seed: int = 0,
) -> dict[str, BootstrapCI]:
    """CIs (in percent) for the paper's headline per-user means."""
    followees = followee_migration(dataset)
    similarity = content_similarity(dataset)
    tox = toxicity_analysis(dataset)
    samples: dict[str, np.ndarray] = {
        "mean_followees_migrated_pct": 100.0
        * np.repeat(followees.frac_migrated.xs, _counts(followees.frac_migrated)),
        "identical_statuses_pct": 100.0
        * np.repeat(
            similarity.identical_fraction.xs, _counts(similarity.identical_fraction)
        ),
        "similar_statuses_pct": 100.0
        * np.repeat(
            similarity.similar_fraction.xs, _counts(similarity.similar_fraction)
        ),
        "user_tweets_toxic_pct": 100.0
        * np.repeat(
            tox.twitter_toxic_fraction.xs, _counts(tox.twitter_toxic_fraction)
        ),
        "user_statuses_toxic_pct": 100.0
        * np.repeat(
            tox.mastodon_toxic_fraction.xs, _counts(tox.mastodon_toxic_fraction)
        ),
    }
    return {
        key: bootstrap_ci(sample, n_resamples=n_resamples, seed=seed)
        for key, sample in samples.items()
    }


def _counts(ecdf) -> np.ndarray:
    """Recover per-value multiplicities from an ECDF."""
    cumulative = np.round(ecdf.ps * ecdf.n).astype(int)
    return np.diff(np.concatenate([[0], cumulative]))
