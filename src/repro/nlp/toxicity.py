"""A Perspective-API-like toxicity scorer.

Stand-in for Google Jigsaw's Perspective API (Section 6.3).  The scorer is a
pure function of the text: lexicon hits are accumulated with diminishing
returns and squashed into [0, 1].  Calibration: a typical post carrying two
strong lexicon tokens scores above the paper's 0.5 threshold, a post with a
single mild token stays below it, and clean text scores near 0.
"""

from __future__ import annotations

import math

from repro.nlp.vocabulary import TOXIC_LEXICON
from repro.util.text import tokenize

#: Bigrams whose combination is more toxic than the parts.
_TOXIC_BIGRAMS: dict[tuple[str, str], float] = {
    ("shut", "up"): 0.45,
    ("go", "away"): 0.2,
}


class PerspectiveScorer:
    """Returns a TOXICITY attribute score in [0, 1] for any text."""

    def __init__(self, lexicon: dict[str, float] | None = None) -> None:
        self._lexicon = dict(TOXIC_LEXICON if lexicon is None else lexicon)

    def score(self, text: str) -> float:
        """The toxicity of ``text``.

        Accumulates lexicon weights with a square-root damping on repeated
        hits, then squashes with ``1 - exp(-x)`` scaled so that two strong
        tokens (weight ~0.55 each) cross 0.5.
        """
        tokens = tokenize(text)
        if not tokens:
            return 0.0
        raw = 0.0
        hits = 0
        for token in tokens:
            weight = self._lexicon.get(token, 0.0)
            if weight > 0.0:
                hits += 1
                raw += weight / math.sqrt(hits)
        for pair, weight in _TOXIC_BIGRAMS.items():
            for a, b in zip(tokens, tokens[1:]):
                if (a, b) == pair:
                    hits += 1
                    raw += weight / math.sqrt(hits)
        if hits == 0:
            return 0.0
        # length prior: a slur in a short post is more salient
        length_factor = 1.0 + 1.0 / math.sqrt(len(tokens))
        squashed = 1.0 - math.exp(-0.85 * raw * length_factor)
        return min(1.0, squashed)

    def is_toxic(self, text: str, threshold: float = 0.5) -> bool:
        """Thresholded judgement (the paper uses 0.5 following [5, 22, 17])."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        return self.score(text) > threshold

    def score_batch(self, texts: list[str]) -> list[float]:
        return [self.score(t) for t in texts]
