"""Tests for repro.util.distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.distributions import (
    bounded_geometric,
    dirichlet_mixture,
    discrete_powerlaw,
    lognormal_int,
    zipf_weights,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestDiscretePowerlaw:
    def test_scalar_draw(self):
        value = discrete_powerlaw(rng(), alpha=2.5)
        assert isinstance(value, int)
        assert value >= 1

    def test_respects_x_min(self):
        draws = discrete_powerlaw(rng(), alpha=2.5, x_min=10, size=500)
        assert draws.min() >= 10

    def test_respects_x_max(self):
        draws = discrete_powerlaw(rng(), alpha=2.0, x_max=50, size=500)
        assert draws.max() <= 50

    def test_heavier_tail_for_smaller_alpha(self):
        light = discrete_powerlaw(rng(1), alpha=3.5, size=5000).mean()
        heavy = discrete_powerlaw(rng(1), alpha=1.8, size=5000).mean()
        assert heavy > light

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            discrete_powerlaw(rng(), alpha=1.0)

    def test_invalid_x_min(self):
        with pytest.raises(ValueError):
            discrete_powerlaw(rng(), alpha=2.0, x_min=0)


class TestLognormalInt:
    def test_median_roughly_matches(self):
        draws = lognormal_int(rng(), median=100, sigma=0.8, size=20_000)
        assert 85 <= np.median(draws) <= 115

    def test_minimum_enforced(self):
        draws = lognormal_int(rng(), median=2, sigma=2.0, size=1000, minimum=1)
        assert draws.min() >= 1

    def test_scalar(self):
        assert isinstance(lognormal_int(rng(), median=10, sigma=0.5), int)

    def test_zero_sigma_is_constant(self):
        draws = lognormal_int(rng(), median=42, sigma=0.0, size=10)
        assert set(draws.tolist()) == {42}

    def test_invalid_median(self):
        with pytest.raises(ValueError):
            lognormal_int(rng(), median=0, sigma=1.0)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            lognormal_int(rng(), median=10, sigma=-0.1)


class TestZipfWeights:
    def test_normalised(self):
        assert zipf_weights(50, 1.5).sum() == pytest.approx(1.0)

    def test_decreasing(self):
        weights = zipf_weights(20, 1.2)
        assert np.all(np.diff(weights) < 0)

    def test_zero_exponent_uniform(self):
        weights = zipf_weights(10, 0.0)
        np.testing.assert_allclose(weights, 0.1)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            zipf_weights(5, -0.5)

    @given(
        n=st.integers(min_value=1, max_value=300),
        exponent=st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
    )
    @settings(max_examples=50)
    def test_always_a_distribution(self, n, exponent):
        weights = zipf_weights(n, exponent)
        assert weights.shape == (n,)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights > 0)


class TestBoundedGeometric:
    def test_respects_maximum(self):
        draws = bounded_geometric(rng(), mean=50, maximum=10, size=500)
        assert draws.max() <= 10

    def test_mean_in_ballpark(self):
        draws = bounded_geometric(rng(), mean=3, maximum=1000, size=50_000)
        assert 1.5 <= draws.mean() <= 3.5

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            bounded_geometric(rng(), mean=0, maximum=5)

    def test_invalid_maximum(self):
        with pytest.raises(ValueError):
            bounded_geometric(rng(), mean=2, maximum=0)


class TestDirichletMixture:
    def test_returns_probability_vector(self):
        mix = dirichlet_mixture(rng(), [1.0, 2.0, 3.0])
        assert mix.sum() == pytest.approx(1.0)
        assert np.all(mix >= 0)

    def test_invalid_concentration(self):
        with pytest.raises(ValueError):
            dirichlet_mixture(rng(), [1.0, 0.0])
