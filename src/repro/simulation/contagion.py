"""The social-contagion migration model (RQ2's generative counterpart).

Section 5 distinguishes two migration drivers: ideology (disagreement with
the takeover) and social pressure (one's followees already left).  The model
combines both into a daily hazard for each candidate:

    hazard(u, t) = base * intensity(t)
                   * (ideology_weight * ideology(u) + 0.25)
                   * (1 + contagion_weight * migrated_followee_fraction(u, t))

With ``contagion_weight = 0`` migration becomes a pure ideology/event process
— the ablation benchmark uses exactly that to show the Figure 8/10 orderings
collapse without contagion.
"""

from __future__ import annotations

import datetime as _dt

import numpy as np

from repro.simulation.config import WorldConfig
from repro.simulation.events import EventTimeline
from repro.simulation.population import SimUser
from repro.twitter.graph import FollowGraph
from repro.util.clock import TAKEOVER_DATE


class ContagionModel:
    """Decides, day by day, which candidates migrate."""

    def __init__(
        self,
        config: WorldConfig,
        timeline: EventTimeline,
        graph: FollowGraph,
        rng: np.random.Generator,
    ) -> None:
        self._config = config
        self._timeline = timeline
        self._graph = graph
        self._rng = rng

    def migrated_followee_fraction(
        self, user_id: int, migrated: set[int]
    ) -> float:
        """Fraction of ``user_id``'s followees that already migrated."""
        followees = self._graph.followees_of(user_id)
        if not followees:
            return 0.0
        moved = sum(1 for f in followees if f in migrated)
        return moved / len(followees)

    def hazard_given_fraction(
        self, agent: SimUser, day: _dt.date, fraction: float
    ) -> float:
        """Migration probability when the migrated-followee fraction is known.

        The world tracks the fraction incrementally, so this is the hot path.
        """
        config = self._config
        intensity = self._timeline.intensity(day)
        if intensity <= 0.0:
            return 0.0
        ideology_term = config.ideology_weight * agent.ideology + 0.25
        contagion_term = 1.0 + config.contagion_weight * fraction
        hazard = config.base_daily_hazard * intensity * ideology_term * contagion_term
        # Pre-takeover adoption is rare and ideology-only: Mastodon's pull
        # before the event was curiosity, not contagion.
        if day < TAKEOVER_DATE:
            hazard *= 0.35
        return min(0.95, hazard)

    def hazard_batch(
        self, ideology: np.ndarray, fraction: np.ndarray, day: _dt.date
    ) -> np.ndarray:
        """Vectorised :meth:`hazard_given_fraction` over agent columns.

        Same formula, one array expression per tick instead of one Python
        call per candidate — the columnar tick loop's contagion kernel.
        """
        config = self._config
        intensity = self._timeline.intensity(day)
        if intensity <= 0.0:
            return np.zeros(len(ideology))
        hazard = (
            config.base_daily_hazard
            * intensity
            * (config.ideology_weight * ideology + 0.25)
            * (1.0 + config.contagion_weight * fraction)
        )
        if day < TAKEOVER_DATE:
            hazard *= 0.35
        return np.minimum(0.95, hazard)

    def hazard(self, agent: SimUser, day: _dt.date, migrated: set[int]) -> float:
        """Migration probability for ``agent`` on ``day``."""
        social = self.migrated_followee_fraction(agent.user_id, migrated)
        return self.hazard_given_fraction(agent, day, social)

    def decide(self, agent: SimUser, day: _dt.date, migrated: set[int]) -> bool:
        """Bernoulli draw against the hazard."""
        return bool(self._rng.random() < self.hazard(agent, day, migrated))
