"""A deterministic sentence encoder.

Stand-in for the Sentence-BERT embeddings the paper uses for its
content-similarity analysis (Section 6.1).  Texts are embedded by signed
feature hashing of their tokens with sublinear term weighting, then
L2-normalised, so cosine similarity behaves like a bag-of-words similarity:

- identical texts  -> cosine 1.0;
- texts sharing most tokens -> cosine close to 1;
- topically unrelated texts -> cosine near 0.

The paper thresholds cosine similarity at 0.7 for "similar" posts; the same
threshold separates shared-token rewrites from unrelated posts here.
"""

from __future__ import annotations

import zlib
from collections import Counter

import numpy as np

from repro.util.text import tokenize

DEFAULT_DIM = 256


class HashingSentenceEncoder:
    """Feature-hashing bag-of-words sentence embeddings."""

    def __init__(self, dim: int = DEFAULT_DIM) -> None:
        if dim < 8:
            raise ValueError(f"embedding dimension too small: {dim}")
        self.dim = dim

    def _bucket(self, token: str) -> tuple[int, float]:
        digest = zlib.crc32(token.encode("utf-8"))
        index = digest % self.dim
        sign = 1.0 if (digest >> 16) & 1 else -1.0
        return index, sign

    def encode(self, text: str) -> np.ndarray:
        """The L2-normalised embedding of ``text`` (zero vector if empty)."""
        vec = np.zeros(self.dim, dtype=np.float64)
        counts = Counter(tokenize(text))
        for token, count in counts.items():
            index, sign = self._bucket(token)
            vec[index] += sign * (1.0 + np.log(count))
        norm = np.linalg.norm(vec)
        if norm > 0:
            vec /= norm
        return vec

    def encode_batch(self, texts: list[str]) -> np.ndarray:
        """Row-stacked embeddings, shape ``(len(texts), dim)``."""
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.vstack([self.encode(t) for t in texts])


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0.0 when either is zero)."""
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def max_similarities(queries: np.ndarray, corpus: np.ndarray) -> np.ndarray:
    """For each (already normalised) query row, its max cosine over the corpus.

    Used per-user: queries are the user's Mastodon statuses, the corpus their
    tweets; the result feeds the identical/similar thresholds of Figure 14.
    """
    if queries.size == 0:
        return np.zeros(0, dtype=np.float64)
    if corpus.size == 0:
        return np.zeros(queries.shape[0], dtype=np.float64)
    sims = queries @ corpus.T
    return np.asarray(sims.max(axis=1), dtype=np.float64)
