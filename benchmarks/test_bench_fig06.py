"""Benchmark: regenerate Instance-size quantile activity (Figure 6).

Measures the analysis cost of the figure on the shared benchmark dataset
and asserts the paper's qualitative shape holds.
"""

from repro.experiments.registry import get_experiment


def test_bench_fig06(benchmark, bench_dataset):
    result = benchmark(get_experiment("F6"), bench_dataset)
    assert result.notes["single_user_instance_share_pct"] > 0.0
