"""Tests for repro.fediverse.activitypub."""

import datetime as dt

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fediverse.activitypub import (
    Accept,
    Announce,
    Create,
    Follow,
    Move,
    actor_url,
    make_acct,
    parse_acct,
)

WHEN = dt.datetime(2022, 10, 28, 12, 0)


class TestAddressing:
    def test_make_acct(self):
        assert make_acct("alice", "mastodon.social") == "alice@mastodon.social"

    def test_parse_basic(self):
        assert parse_acct("alice@mastodon.social") == ("alice", "mastodon.social")

    def test_parse_leading_at(self):
        assert parse_acct("@alice@mastodon.social") == ("alice", "mastodon.social")

    def test_parse_lowercases_domain_only(self):
        username, domain = parse_acct("Alice@Mastodon.Social")
        assert username == "Alice"
        assert domain == "mastodon.social"

    def test_parse_dots_and_dashes(self):
        assert parse_acct("a.b-c_d@sub.example-x.com") == ("a.b-c_d", "sub.example-x.com")

    @pytest.mark.parametrize(
        "bad", ["alice", "@alice", "alice@", "@@x", "a b@x.com", ""]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_acct(bad)

    def test_actor_url(self):
        assert actor_url("alice", "m.social") == "https://m.social/@alice"


username_st = st.from_regex(r"[A-Za-z0-9_]{1,12}", fullmatch=True)
domain_st = st.from_regex(r"[a-z0-9]{1,10}\.[a-z]{2,5}", fullmatch=True)


@given(username=username_st, domain=domain_st)
def test_make_parse_roundtrip(username, domain):
    """Property: parse(make(u, d)) == (u, d)."""
    assert parse_acct(make_acct(username, domain)) == (username, domain)


class TestActivities:
    def test_follow_requires_target(self):
        with pytest.raises(ValueError):
            Follow(actor="a@x.com", published=WHEN)

    def test_accept_requires_follower(self):
        with pytest.raises(ValueError):
            Accept(actor="a@x.com", published=WHEN)

    def test_create_requires_status(self):
        with pytest.raises(ValueError):
            Create(actor="a@x.com", published=WHEN)

    def test_announce_requires_status(self):
        with pytest.raises(ValueError):
            Announce(actor="a@x.com", published=WHEN)

    def test_move_requires_target(self):
        with pytest.raises(ValueError):
            Move(actor="a@x.com", published=WHEN)

    def test_valid_activities_freeze(self):
        follow = Follow(actor="a@x.com", published=WHEN, target="b@y.com")
        with pytest.raises(AttributeError):
            follow.target = "c@z.com"  # type: ignore[misc]
