"""Figure 9: the chord matrix of instance switches.

Paper shape: 4.09% of users switch (97.22% after the takeover), typically
from flagship general-purpose instances (mastodon.social, mastodon.online)
toward topic-specific ones (sigmoid.social, historians.social, ...).
"""

from __future__ import annotations

from repro.analysis.switching import switch_matrix
from repro.collection.dataset import MigrationDataset
from repro.experiments.registry import ExperimentResult

EXP_ID = "F9"
TITLE = "Chord matrix of instance switches (first -> second)"


def run(dataset: MigrationDataset) -> ExperimentResult:
    result = switch_matrix(dataset)
    ranked = sorted(result.matrix.items(), key=lambda kv: -kv[1])
    rows = [(src, dst, count) for (src, dst), count in ranked[:30]]
    flagship_sources = sum(
        count
        for (src, __), count in result.matrix.items()
        if src in ("mastodon.social", "mastodon.online", "mstdn.social", "mas.to")
    )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["first instance", "second instance", "switches"],
        rows=rows,
        notes={
            "pct_switched": result.pct_switched,
            "pct_post_takeover": result.pct_post_takeover,
            "switcher_count": float(result.switcher_count),
            "pct_from_flagships": 100.0
            * flagship_sources
            / max(1, result.switcher_count),
        },
    )
