"""What changed between two dataset snapshots (the advance's receipt).

:class:`DatasetDelta` is computed by :func:`repro.incremental.advance`
while it merges a delta crawl into an existing snapshot, and is consumed
downstream to keep work proportional to the change:

- :meth:`repro.frames.DatasetFrames.rebase` uses the per-user *kept-row*
  counts to splice cached columnar/NLP rows instead of recomputing them;
- the frames result cache drops only entries whose input domains appear in
  :meth:`DatasetDelta.domains_changed`;
- :meth:`repro.serving.app.ServingApp.swap_dataset` evicts only the
  payload-cache entries the changed domains (and changed user ids) can
  reach.

Kept counts are *verified prefixes*: the advance checks that the old rows
really are a prefix of the merged rows (ids compared) and records the
common prefix length otherwise, so a consumer can always trust
``new_rows[:kept] == old_rows[:kept]`` element-for-element.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DatasetDelta:
    """Row-level change summary of one clock advance."""

    #: rows of the old §3.1 corpus that survived as a prefix of the new one
    corpus_prefix: int = 0
    #: rows appended to the corpus past the prefix
    corpus_appended: int = 0
    #: per Twitter uid with a changed/new Twitter timeline: old rows kept
    twitter_changed: dict[int, int] = field(default_factory=dict)
    #: per Twitter uid with a changed/new Mastodon timeline: old rows kept
    mastodon_changed: dict[int, int] = field(default_factory=dict)
    #: the matched-user table gained rows (it is monotone in the clock)
    matched_changed: bool = False
    #: the Mastodon account-record table changed
    accounts_changed: bool = False
    #: the followee sample gained records
    followees_changed: bool = False
    #: per-instance weekly-activity rows changed
    weekly_changed: bool = False
    #: the trends series changed (re-normalisation makes this almost always
    #: true once the clock moves)
    trends_changed: bool = False
    #: the instance index changed (never, today: the directory is static)
    instances_changed: bool = False

    @property
    def corpus_changed(self) -> bool:
        return self.corpus_appended > 0

    def domains_changed(self) -> set[str]:
        """The result-cache input domains this delta touches.

        Domain names match the vocabulary of
        :data:`repro.frames.core.RESULT_DEPS`.
        """
        domains: set[str] = set()
        if self.corpus_changed:
            domains.add("corpus")
        if self.twitter_changed:
            domains.add("twitter_timelines")
        if self.mastodon_changed:
            domains.add("mastodon_timelines")
        if self.matched_changed:
            domains.add("matched")
        if self.accounts_changed:
            domains.add("accounts")
        if self.followees_changed:
            domains.add("followees")
        if self.weekly_changed:
            domains.add("weekly")
        if self.trends_changed:
            domains.add("trends")
        if self.instances_changed:
            domains.add("instances")
        return domains

    def summary(self) -> str:
        """One human line for logs and CLI output."""
        return (
            f"corpus +{self.corpus_appended}, "
            f"twitter Δ{len(self.twitter_changed)} users, "
            f"mastodon Δ{len(self.mastodon_changed)} users, "
            f"domains {sorted(self.domains_changed())}"
        )


def kept_prefix(old_ids, new_ids) -> int:
    """Length of the longest common prefix of two id sequences.

    The advance composes timelines as a sorted merge; when ids are
    time-monotone (they are, in this world) the old rows form a full
    prefix and this returns ``len(old_ids)`` after one vector compare.
    The element-wise fallback only runs on the (theoretical) non-monotone
    case, so consumers never need to re-verify the prefix.
    """
    n = min(len(old_ids), len(new_ids))
    if n == 0:
        return 0
    if list(old_ids[:n]) == list(new_ids[:n]):
        return n
    k = 0
    while k < n and old_ids[k] == new_ids[k]:
        k += 1
    return k
