"""The instance-choice model (RQ1/RQ2's generative counterpart).

When a candidate migrates they pick an instance by one of four moves:

- **social copy** (weight ``choice_social_weight``): join the instance of a
  randomly chosen already-migrated followee — the network effect behind the
  paper's "14.72% of a user's migrated followees share their instance";
- **flagship attachment** (``choice_flagship_weight``): preferential
  attachment over directory weight plus current population — the force
  behind the 96%-on-top-25% concentration of Figure 5;
- **topic match** (``choice_topic_weight``): a topical instance matching the
  user's dominant interest (gamedev folk on mastodon.gamedev.place, ...);
- **uniform** (remaining weight): anywhere in the directory.

Independently, highly active users may **self-host** a fresh single-user
instance, producing Figure 6's 13.16% single-user instances whose users are
*more* active than flagship users.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.simulation.config import WorldConfig
from repro.simulation.population import InstanceSpec, SimUser


class InstanceChooser:
    """Chooses a Mastodon instance for each migrating user."""

    def __init__(
        self,
        config: WorldConfig,
        specs: list[InstanceSpec],
        rng: np.random.Generator,
    ) -> None:
        self._config = config
        self._specs = list(specs)
        self._rng = rng
        self._domains = [spec.domain for spec in self._specs]
        self._base_weights = np.array([spec.weight for spec in self._specs])
        self._population = Counter({spec.domain: 0 for spec in self._specs})
        self._by_topic: dict[str, list[int]] = {}
        for i, spec in enumerate(self._specs):
            self._by_topic.setdefault(spec.topic, []).append(i)
        self._self_host_count = 0

    @property
    def populations(self) -> Counter:
        """Migrants placed on each instance so far."""
        return self._population

    def record_population(self, domain: str, delta: int = 1) -> None:
        self._population[domain] += delta

    def wants_self_host(self, agent: SimUser) -> bool:
        """Self-hosting is an engaged-user move (Fig. 6's activity paradox)."""
        p = self._config.self_host_probability * (4.0 * agent.engagement**2)
        return bool(self._rng.random() < p)

    def new_self_host_domain(self, agent: SimUser) -> str:
        self._self_host_count += 1
        return f"{agent.username.replace('_', '-')}.{['page', 'me', 'name'][self._self_host_count % 3]}"

    def choose(self, agent: SimUser, followee_instances: "Counter[str]") -> str:
        """Pick an existing directory instance for ``agent``.

        ``followee_instances`` counts the user's already-migrated followees
        per instance; the social-copy move samples proportionally, so popular
        choices in the ego network are copied more often.
        """
        config = self._config
        rng = self._rng
        total = sum(followee_instances.values())
        # When the user has no migrated followees the social-copy move is
        # unavailable and its mass redistributes *proportionally* over the
        # remaining moves (not to any single branch).
        social = config.choice_social_weight if total > 0 else 0.0
        # The paper's explanation of the Figure 6 paradox: small instances
        # attract *dedicated* users, flagships accumulate *experimental*
        # ones.  Engagement therefore tilts the flagship/topical/uniform
        # split: low-engagement users default to the big names.
        e = agent.engagement
        weights = np.array(
            [
                social,
                config.choice_flagship_weight * (1.6 - 1.0 * e),
                config.choice_topic_weight * (0.4 + 1.6 * e),
                max(0.0, config.choice_random_weight) * (0.3 + 2.0 * e * e),
            ]
        )
        move = int(rng.choice(4, p=weights / weights.sum()))
        if move == 0:
            pick = int(rng.integers(0, total))
            for domain, count in followee_instances.items():
                pick -= count
                if pick < 0:
                    return domain
            raise RuntimeError("unreachable: counter sampling fell through")
        if move == 1:
            return self._preferential()
        if move == 2:
            return self._topical(agent)
        return self._domains[int(rng.integers(0, len(self._domains)))]

    def _preferential(self) -> str:
        counts = np.array([self._population[d] for d in self._domains], dtype=float)
        weights = self._base_weights + counts / max(1.0, counts.sum())
        weights = weights / weights.sum()
        idx = int(self._rng.choice(len(self._domains), p=weights))
        return self._domains[idx]

    def _topical(self, agent: SimUser) -> str:
        indices = self._by_topic.get(agent.main_topic)
        if not indices:
            indices = self._by_topic["general"]
        weights = self._base_weights[indices]
        weights = weights / weights.sum()
        pick = int(self._rng.choice(len(indices), p=weights))
        return self._domains[indices[pick]]
