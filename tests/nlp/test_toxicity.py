"""Tests for repro.nlp.toxicity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.toxicity import PerspectiveScorer


@pytest.fixture
def scorer():
    return PerspectiveScorer()


class TestScore:
    def test_empty_text(self, scorer):
        assert scorer.score("") == 0.0

    def test_clean_text_scores_zero(self, scorer):
        assert scorer.score("lovely painting of a quiet meadow") == 0.0

    def test_two_strong_tokens_cross_half(self, scorer):
        text = "you are a moron and a loser honestly just leave the room today"
        assert scorer.score(text) > 0.5

    def test_single_mild_token_stays_below_half(self, scorer):
        text = "that movie was awful but the soundtrack made the evening fine"
        assert scorer.score(text) < 0.5

    def test_shut_up_bigram_boost(self, scorer):
        base = scorer.score("please just be quiet about the game tonight thanks")
        boosted = scorer.score("please just shut up about the game tonight thanks")
        assert boosted > base

    def test_short_posts_more_salient(self, scorer):
        short = scorer.score("total moron")
        long = scorer.score(
            "total moron " + " ".join(["word"] * 40)
        )
        assert short > long

    def test_case_insensitive(self, scorer):
        assert scorer.score("MORON LOSER") == scorer.score("moron loser")

    def test_custom_lexicon(self):
        scorer = PerspectiveScorer(lexicon={"banana": 0.9})
        assert scorer.score("banana banana") > 0.5
        assert scorer.score("moron") == 0.0


class TestIsToxic:
    def test_threshold_validation(self, scorer):
        with pytest.raises(ValueError):
            scorer.is_toxic("x", threshold=1.5)

    def test_paper_default_threshold(self, scorer):
        assert scorer.is_toxic("what a pathetic disgusting clown show")
        assert not scorer.is_toxic("what a wonderful show")

    def test_higher_threshold_is_stricter(self, scorer):
        text = "honestly these liars and their garbage takes"
        assert scorer.is_toxic(text, threshold=0.3)
        # the same text may pass a 0.8 threshold used by some papers
        assert scorer.score(text) == scorer.score(text)  # pure function


class TestBatch:
    def test_score_batch(self, scorer):
        scores = scorer.score_batch(["nice day", "moron loser idiot"])
        assert scores[0] < scores[1]


@given(st.text(max_size=400))
@settings(max_examples=80)
def test_score_always_in_unit_interval(text):
    score = PerspectiveScorer().score(text)
    assert 0.0 <= score <= 1.0


@given(st.text(max_size=200))
@settings(max_examples=40)
def test_score_is_pure(text):
    scorer = PerspectiveScorer()
    assert scorer.score(text) == scorer.score(text)
