"""Tests for repro.obs.events: the timestamped event stream."""

import pytest

from repro.obs.events import EVENT_KINDS, NULL_EVENTS, EventLog, read_jsonl
from repro.obs.metrics import NOOP, MetricsRegistry


class TestEventLog:
    def test_emit_stamps_both_clocks(self):
        log = EventLog()
        log.emit("heartbeat", "tick", n=1)
        (event,) = log.events
        assert event["kind"] == "heartbeat"
        assert event["name"] == "tick"
        assert event["fields"] == {"n": 1}
        assert event["ts"] > 0 and event["mono"] > 0

    def test_explicit_timestamps_are_kept(self):
        log = EventLog()
        log.emit("span_open", "s", ts=123.0, mono=4.5, depth=0)
        assert log.events[0]["ts"] == 123.0
        assert log.events[0]["mono"] == 4.5

    def test_sorted_events_orders_by_monotonic_clock(self):
        log = EventLog()
        log.emit("heartbeat", "b", ts=2.0, mono=2.0)
        log.emit("heartbeat", "a", ts=1.0, mono=1.0)
        assert [e["name"] for e in log.sorted_events()] == ["a", "b"]
        # the underlying list keeps append order (sort is non-destructive)
        assert [e["name"] for e in log.events] == ["b", "a"]

    def test_extend_concatenates(self):
        a, b = EventLog(), EventLog()
        a.emit("heartbeat", "main")
        b.emit("heartbeat", "shard")
        a.extend(b)
        assert len(a) == 2

    def test_jsonl_roundtrip(self, tmp_path):
        log = EventLog()
        log.emit("heartbeat", "late", ts=9.0, mono=9.0, tick=3)
        log.emit("heartbeat", "early", ts=1.0, mono=1.0, tick=0)
        path = tmp_path / "events.jsonl"
        assert log.write_jsonl(path) == 2
        loaded = read_jsonl(path)
        # written in timeline order, fields intact
        assert [e["name"] for e in loaded] == ["early", "late"]
        assert loaded == log.sorted_events()

    def test_null_log_records_nothing(self):
        NULL_EVENTS.emit("heartbeat", "x")
        other = EventLog()
        other.emit("heartbeat", "y")
        NULL_EVENTS.extend(other)
        assert len(NULL_EVENTS) == 0
        assert NULL_EVENTS.enabled is False


class TestRegistryIntegration:
    def test_span_lifecycle_lands_in_stream(self):
        registry = MetricsRegistry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        kinds = [(e["kind"], e["name"]) for e in registry.events.sorted_events()]
        assert kinds == [
            ("span_open", "outer"),
            ("span_open", "inner"),
            ("span_close", "inner"),
            ("span_close", "outer"),
        ]

    def test_span_events_reuse_span_timestamps(self):
        registry = MetricsRegistry()
        with registry.span("work") as span:
            pass
        opened, closed = registry.events.sorted_events()
        assert opened["ts"] == span.start_epoch
        assert opened["mono"] == span.start_mono
        assert closed["ts"] == span.end_epoch
        assert closed["fields"]["wall_seconds"] == span.wall_seconds

    def test_span_close_carries_error(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            with registry.span("failing"):
                raise ValueError("boom")
        closed = [
            e for e in registry.events.sorted_events() if e["kind"] == "span_close"
        ]
        assert closed[0]["fields"]["error"] == "ValueError"

    def test_heartbeat_goes_through_registry(self):
        registry = MetricsRegistry()
        registry.heartbeat("world.simulate", tick=3, posts=120)
        (event,) = registry.events.events
        assert event["kind"] == "heartbeat"
        assert event["fields"] == {"tick": 3, "posts": 120}

    def test_event_kinds_is_exhaustive(self):
        registry = MetricsRegistry()
        registry.watch_counter("reqs", every=1)
        with registry.span("s"):
            registry.counter("reqs").inc()
            registry.heartbeat("hb")
        kinds = {e["kind"] for e in registry.events.events}
        assert kinds == set(EVENT_KINDS)

    def test_merge_folds_shard_events(self):
        main, shard = MetricsRegistry(), MetricsRegistry()
        shard.heartbeat("shard-beat", shard=0)
        main.merge(shard)
        assert [e["name"] for e in main.events.events] == ["shard-beat"]

    def test_null_registry_heartbeat_is_noop(self):
        NOOP.heartbeat("anything", n=1)
        assert len(NOOP.events) == 0

    def test_metrics_export_includes_events(self):
        registry = MetricsRegistry()
        registry.heartbeat("hb")
        doc = registry.to_dict()
        assert {"counters", "gauges", "histograms", "spans", "events"} == set(doc)
        assert doc["events"][0]["name"] == "hb"


class TestCounterWatches:
    def test_crossing_emits_one_event_per_threshold(self):
        registry = MetricsRegistry()
        registry.watch_counter("reqs", every=10)
        counter = registry.counter("reqs", endpoint="search")
        for _ in range(25):
            counter.inc()
        events = [e for e in registry.events.events if e["kind"] == "counter"]
        assert [e["fields"]["threshold"] for e in events] == [10.0, 20.0]
        assert events[-1]["fields"]["value"] == 20
        assert events[0]["fields"]["labels"] == {"endpoint": "search"}

    def test_big_increment_crosses_once(self):
        registry = MetricsRegistry()
        registry.watch_counter("reqs", every=10)
        registry.counter("reqs").inc(35)
        events = [e for e in registry.events.events if e["kind"] == "counter"]
        # one event per crossing *batch*, stamped with the first threshold
        assert len(events) == 1
        assert events[0]["fields"]["threshold"] == 10.0
        registry.counter("reqs").inc(10)  # 45 -> next threshold is 40
        events = [e for e in registry.events.events if e["kind"] == "counter"]
        assert [e["fields"]["threshold"] for e in events] == [10.0, 40.0]

    def test_watch_applies_to_existing_counters(self):
        registry = MetricsRegistry()
        counter = registry.counter("reqs")
        counter.inc(7)
        registry.watch_counter("reqs", every=10)
        counter.inc(5)  # 12 crosses 10
        events = [e for e in registry.events.events if e["kind"] == "counter"]
        assert len(events) == 1

    def test_default_watches_cover_request_counters(self):
        registry = MetricsRegistry()
        registry.watch_default_counters()
        registry.counter("twitter.ratelimit.requests", endpoint="s").inc(500)
        registry.counter("mastodon.api.requests", endpoint="a").inc(500)
        events = [e for e in registry.events.events if e["kind"] == "counter"]
        assert {e["name"] for e in events} == {
            "twitter.ratelimit.requests",
            "mastodon.api.requests",
        }

    def test_invalid_watch_interval_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.watch_counter("reqs", every=0)

    def test_unwatched_counter_emits_nothing(self):
        registry = MetricsRegistry()
        registry.counter("reqs").inc(10_000)
        assert len(registry.events) == 0
