"""Quickstart: build a world, run the paper's pipeline, print the findings.

Usage::

    python examples/quickstart.py [--scale 0.004] [--seed 7]

This walks the full reproduction once: simulate the migration event, collect
the dataset exactly as Section 3 of the paper describes, then print the
paper-vs-measured headline table.
"""

import argparse
import time

from repro.simulation.config import SimConfig
from repro import build_world, collect_dataset
from repro.analysis.report import format_report, headline_report
from repro.simulation.validation import validate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.004,
                        help="fraction of the paper's 136k migrants to simulate")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"Simulating the migration event (scale={args.scale}, seed={args.seed})...")
    started = time.time()
    world = build_world(SimConfig(seed=args.seed, scale=args.scale))
    print(
        f"  world ready in {time.time() - started:.1f}s: "
        f"{len(world.migrants)} migrants, "
        f"{world.twitter_store.tweet_count} tweets, "
        f"{world.network.instance_count} instances"
    )

    print("Running the Section 3 collection pipeline...")
    started = time.time()
    dataset = collect_dataset(world)
    print(
        f"  collected in {time.time() - started:.1f}s: "
        f"{len(dataset.collected_tweets)} migration tweets, "
        f"{dataset.migrant_count} matched migrants, "
        f"{len(dataset.followee_sample)} followee crawls"
    )

    report = validate(world, dataset)
    print(f"  methodology audit vs ground truth: {report.summary()}")

    print("\nPaper vs measured (all analyses):\n")
    print(format_report(headline_report(dataset)))


if __name__ == "__main__":
    main()
