"""Tests for repro.collection.weekly_activity."""

import datetime as dt

from repro.collection.weekly_activity import WeeklyActivityCrawler, aggregate_weeks
from repro.fediverse.api import MastodonClient
from repro.fediverse.network import FediverseNetwork


def build_network():
    net = FediverseNetwork()
    a = net.create_instance("a.social")
    b = net.create_instance("b.social")
    down = net.create_instance("down.site")
    down.down = True
    a.record_aggregate_activity(dt.date(2022, 10, 28), statuses=10, logins=5,
                                registrations=2)
    b.record_aggregate_activity(dt.date(2022, 10, 28), statuses=1, logins=1,
                                registrations=1)
    b.record_aggregate_activity(dt.date(2022, 11, 4), statuses=7, logins=3,
                                registrations=0)
    return net


class TestCrawler:
    def test_collects_rows_per_domain(self):
        net = build_network()
        crawler = WeeklyActivityCrawler(MastodonClient(net))
        activity = crawler.crawl(["a.social", "b.social"])
        assert set(activity) == {"a.social", "b.social"}

    def test_down_instances_skipped_and_recorded(self):
        net = build_network()
        crawler = WeeklyActivityCrawler(MastodonClient(net))
        activity = crawler.crawl(["a.social", "down.site", "missing.zone"])
        assert set(activity) == {"a.social"}
        assert crawler.failed_domains == ["down.site", "missing.zone"]


class TestFailurePaths:
    def test_crawl_one_down_instance_returns_none(self):
        net = build_network()
        crawler = WeeklyActivityCrawler(MastodonClient(net))
        assert crawler.crawl_one("down.site") is None
        assert crawler.crawl_one("a.social") is not None

    def test_all_domains_down_yields_empty_activity(self):
        net = build_network()
        for instance in (net.get_instance("a.social"), net.get_instance("b.social")):
            instance.down = True
        crawler = WeeklyActivityCrawler(MastodonClient(net))
        activity = crawler.crawl(["a.social", "b.social", "down.site"])
        assert activity == {}
        assert crawler.failed_domains == ["a.social", "b.social", "down.site"]
        assert aggregate_weeks(activity) == []

    def test_failed_domains_reset_between_crawls(self):
        net = build_network()
        crawler = WeeklyActivityCrawler(MastodonClient(net))
        crawler.crawl(["down.site"])
        assert crawler.failed_domains == ["down.site"]
        crawler.crawl(["a.social"])
        assert crawler.failed_domains == []

    def test_counters_reconcile_with_outcomes(self):
        from repro import obs

        net = build_network()
        crawler = WeeklyActivityCrawler(MastodonClient(net))
        registry = obs.MetricsRegistry()
        with obs.use(registry):
            crawler.crawl(["a.social", "b.social", "down.site", "missing.zone"])
        assert registry.counter_total("collection.weekly_activity.attempted") == 4
        assert registry.counter_total("collection.weekly_activity.ok") == 2
        assert registry.counter_total("collection.weekly_activity.failed") == 2


class TestAggregate:
    def test_sums_per_week(self):
        net = build_network()
        crawler = WeeklyActivityCrawler(MastodonClient(net))
        activity = crawler.crawl(["a.social", "b.social"])
        weeks = aggregate_weeks(activity)
        by_week = {w["week"]: w for w in weeks}
        assert by_week["2022-W43"]["statuses"] == 11
        assert by_week["2022-W43"]["logins"] == 6
        assert by_week["2022-W43"]["registrations"] == 3
        assert by_week["2022-W44"]["statuses"] == 7

    def test_sorted_by_week(self):
        net = build_network()
        crawler = WeeklyActivityCrawler(MastodonClient(net))
        weeks = aggregate_weeks(crawler.crawl(["a.social", "b.social"]))
        labels = [w["week"] for w in weeks]
        assert labels == sorted(labels)

    def test_empty(self):
        assert aggregate_weeks({}) == []
