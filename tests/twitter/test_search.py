"""Tests for repro.twitter.search."""

import datetime as dt

import pytest

from repro.twitter.models import Tweet
from repro.twitter.search import (
    MIGRATION_HASHTAGS,
    MIGRATION_KEYWORDS,
    SearchQuery,
    instance_link_query,
    migration_query,
    url_domain,
)

DAY = dt.date(2022, 11, 1)


def tweet(text: str, day: dt.date = DAY, author: int = 1) -> Tweet:
    return Tweet(
        tweet_id=hash((text, day)) % 10**12,
        author_id=author,
        created_at=dt.datetime.combine(day, dt.time(10, 0)),
        text=text,
        source="Twitter Web App",
    )


class TestUrlDomain:
    def test_host_extracted(self):
        assert url_domain("https://mastodon.social/@alice") == "mastodon.social"

    def test_port_stripped(self):
        assert url_domain("http://example.com:8080/x") == "example.com"

    def test_garbage(self):
        assert url_domain("not a url") == ""


class TestSearchQuery:
    def test_needs_a_term(self):
        with pytest.raises(ValueError):
            SearchQuery()

    def test_phrase_match_case_insensitive(self):
        query = SearchQuery(phrases=("bye bye twitter",))
        assert query.matches(tweet("Bye Bye Twitter, moving on"))
        assert not query.matches(tweet("farewell birds"))

    def test_phrase_is_substring(self):
        query = SearchQuery(phrases=("mastodon",))
        assert query.matches(tweet("I joined mastodon.social today"))

    def test_hashtag_exact_match(self):
        query = SearchQuery(hashtags=("TwitterMigration",))
        assert query.matches(tweet("big move #twittermigration"))
        assert not query.matches(tweet("#TwitterMigrationExtra is different"))

    def test_hashtag_leading_hash_allowed_in_query(self):
        query = SearchQuery(hashtags=("#RIPTwitter",))
        assert query.matches(tweet("sad day #RIPTwitter"))

    def test_domain_match(self):
        query = SearchQuery(url_domains=("mastodon.social",))
        assert query.matches(tweet("i am https://mastodon.social/@alice now"))
        assert not query.matches(tweet("i am https://pleroma.site/@alice now"))

    def test_subdomain_matches_parent(self):
        query = SearchQuery(url_domains=("example.com",))
        assert query.matches(tweet("see https://social.example.com/@bob"))

    def test_parent_does_not_match_subdomain_query(self):
        query = SearchQuery(url_domains=("social.example.com",))
        assert not query.matches(tweet("see https://example.com/@bob"))

    def test_window_bounds_inclusive(self):
        query = SearchQuery(
            phrases=("mastodon",),
            since=dt.date(2022, 10, 26),
            until=dt.date(2022, 11, 21),
        )
        assert query.matches(tweet("mastodon", day=dt.date(2022, 10, 26)))
        assert query.matches(tweet("mastodon", day=dt.date(2022, 11, 21)))
        assert not query.matches(tweet("mastodon", day=dt.date(2022, 11, 22)))
        assert not query.matches(tweet("mastodon", day=dt.date(2022, 10, 25)))

    def test_from_user_restriction(self):
        query = SearchQuery(phrases=("mastodon",), from_user_id=2)
        assert not query.matches(tweet("mastodon", author=1))
        assert query.matches(tweet("mastodon", author=2))

    def test_pure_author_query(self):
        query = SearchQuery(from_user_id=3)
        assert query.matches(tweet("anything at all", author=3))

    def test_disjunction_over_term_kinds(self):
        query = SearchQuery(phrases=("zzz",), hashtags=("Mastodon",))
        assert query.matches(tweet("hello #Mastodon"))


class TestPaperQueries:
    def test_migration_query_includes_paper_terms(self):
        assert "mastodon" in MIGRATION_KEYWORDS
        assert "bye bye twitter" in MIGRATION_KEYWORDS
        assert "TwitterMigration" in MIGRATION_HASHTAGS
        assert len(MIGRATION_HASHTAGS) == 7

    def test_migration_query_matches_announcement(self):
        query = migration_query(dt.date(2022, 10, 26), dt.date(2022, 11, 21))
        assert query.matches(tweet("good bye twitter forever"))
        assert query.matches(tweet("home is now elsewhere #MastodonSocial"))

    def test_instance_link_query(self):
        query = instance_link_query(
            ("mastodon.social", "fosstodon.org"),
            dt.date(2022, 10, 26),
            dt.date(2022, 11, 21),
        )
        assert query.matches(tweet("on https://fosstodon.org/@dev now"))
        assert not query.matches(tweet("no links"))
